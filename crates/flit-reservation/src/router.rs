//! The flit-reservation router (paper Figure 3), as a thin driver over
//! the pipeline stages in [`crate::stages`].
//!
//! The upper half is the control network: control flits arrive in per-VC
//! queues, are routed (heads) or follow their VC's route (bodies), and are
//! presented to the output scheduler of their output port. The output
//! scheduler books each led data flit into the output reservation table;
//! every successful booking is reported to the input scheduler of the
//! originating input port, which fills the input reservation table and
//! returns an advance credit upstream. Once all of a control flit's data
//! flits are scheduled, the control flit is forwarded (or consumed, at the
//! destination, after scheduling the ejection).
//!
//! The lower half is the data network: each cycle the input reservation
//! tables *direct* the data path — which buffer to write the arriving flit
//! to and which buffer to drive onto which output channel. "There are no
//! decisions to be made as all of the work has been done ahead of time by
//! the control flits."
//!
//! `step` owns no routing, scheduling or buffering state of its own: it
//! moves typed requests and grants (`ReservationRequest`/`Grant`,
//! `VcAllocRequest`/`Grant`) between the route-compute, control,
//! reservation, data-path and injection stages. With
//! [`FrRouter::enable_contract_checks`] a `StageContractChecker` verifies
//! the inter-stage contracts every cycle.

use crate::stages::{ControlStage, DataPathStage, FrNiStage, ReservationStage};
use crate::{ArrivalOutcome, FrConfig, SchedulingPolicy};
use noc_engine::stats::RunningStats;
use noc_engine::trace::{NullSink, TraceSink};
use noc_engine::{Cycle, Rng};
use noc_flow::pipeline::{ReservationRequest, StallScan, VcAllocGrant, VcAllocRequest};
use noc_flow::{LinkEvent, RouteCompute, Router, StageContractChecker, StepOutputs, TraceEmit};
use noc_topology::{Mesh, NodeId, Port};
use noc_traffic::Packet;

/// Aggregate statistics a flit-reservation router collects, assembled
/// by [`FrRouter::stats`] from the stages that own the counters.
#[derive(Clone, Debug, Default)]
pub struct FrStats {
    /// Lead (in cycles) of ejection-scheduling control flits over their
    /// data flits at this node, sampled when the reservation is made.
    pub dest_lead: RunningStats,
    /// Data flit reservations committed by this router's output schedulers.
    pub scheduled_flits: u64,
    /// Data flits that arrived before their reservation (schedule list).
    pub parked_arrivals: u64,
    /// Data flits that crossed the router in their arrival cycle.
    pub bypassed_flits: u64,
    /// Scheduling attempts that found no feasible departure slot and
    /// stalled their control flit for at least a cycle (table misses).
    pub reservation_misses: u64,
    /// Control flits forwarded onto outgoing control links.
    pub control_flits_sent: u64,
    /// Data flits forwarded onto outgoing data links (excludes ejections).
    pub data_flits_sent: u64,
    /// Route computations that detoured around a dead output link.
    pub masked_routes: u64,
}

/// A flit-reservation flow-control router.
///
/// Generic over a [`TraceSink`]; the default [`NullSink`] disables
/// tracing at zero cost, [`FrRouter::with_tracer`] plugs a real sink in.
///
/// # Examples
///
/// ```
/// use flit_reservation::{FrConfig, FrRouter};
/// use noc_engine::Rng;
/// use noc_topology::{Mesh, NodeId};
///
/// let mesh = Mesh::new(8, 8);
/// let router = FrRouter::new(mesh, NodeId::new(0), FrConfig::fr6(), Rng::from_seed(9));
/// use noc_flow::Router as _;
/// assert_eq!(router.data_buffer_capacity(noc_topology::Port::East), 6);
/// ```
#[derive(Clone, Debug)]
pub struct FrRouter<S: TraceSink = NullSink> {
    node: NodeId,
    config: FrConfig,
    rng: Rng,
    route: RouteCompute,
    control: ControlStage,
    reservation: ReservationStage,
    data: DataPathStage,
    ni: FrNiStage,
    /// Runtime verifier of the inter-stage contracts, off by default so
    /// the hot path pays nothing.
    contracts: Option<StageContractChecker>,
    sink: S,
}

impl FrRouter {
    /// Creates an untraced router for `node` of `mesh`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (see
    /// [`FrConfig::validate`]).
    pub fn new(mesh: Mesh, node: NodeId, config: FrConfig, rng: Rng) -> Self {
        FrRouter::with_tracer(mesh, node, config, rng, NullSink)
    }
}

impl<S: TraceSink> FrRouter<S> {
    /// Creates a router that reports every event to `sink`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (see
    /// [`FrConfig::validate`]).
    pub fn with_tracer(mesh: Mesh, node: NodeId, config: FrConfig, rng: Rng, sink: S) -> Self {
        config.validate();
        FrRouter {
            node,
            rng,
            route: RouteCompute::new(mesh, node),
            control: ControlStage::new(&config),
            reservation: ReservationStage::new(&config),
            data: DataPathStage::new(&config),
            ni: FrNiStage::new(&config),
            contracts: None,
            config,
            sink,
        }
    }

    /// Buffer transfers incurred so far under the bind-at-reservation
    /// ablation, as `(transfers, residencies)`; `None` when running the
    /// paper's deferred-binding policy (which never transfers).
    pub fn buffer_transfers(&self) -> Option<(u64, u64)> {
        self.data.buffer_transfers()
    }

    /// The router's configuration.
    pub fn config(&self) -> &FrConfig {
        &self.config
    }

    /// Statistics collected so far, assembled from the stages that own
    /// the counters.
    pub fn stats(&self) -> FrStats {
        FrStats {
            dest_lead: self.reservation.dest_lead().clone(),
            scheduled_flits: self.reservation.scheduled_flits(),
            parked_arrivals: self.data.parked_arrivals(),
            bypassed_flits: self.data.bypassed_flits(),
            reservation_misses: self.reservation.reservation_misses(),
            control_flits_sent: self.control.control_flits_sent(),
            data_flits_sent: self.data.data_flits_sent(),
            masked_routes: self.route.masked_routes(),
        }
    }

    /// Turns on per-cycle verification of the inter-stage contracts.
    /// Each breach is surfaced as a `StageContractViolation` trace event
    /// and retained in the checker (see [`FrRouter::contract_checker`]).
    pub fn enable_contract_checks(&mut self) {
        self.contracts = Some(StageContractChecker::new());
    }

    /// The stage-contract checker, if enabled.
    pub fn contract_checker(&self) -> Option<&StageContractChecker> {
        self.contracts.as_ref()
    }

    /// Releases NI data flits whose scheduled injection cycle is `now`
    /// into the local input channel (delivered with this cycle's other
    /// arrivals by [`Self::accept_arrivals`]).
    fn release_injections(&mut self, now: Cycle) {
        for flit in self.ni.take_due_injections(now) {
            self.sink.flit_injected(now, self.node, &flit);
            self.data.queue_arrival(Port::Local, flit);
        }
    }

    /// Buffers this cycle's arrivals into the input pools (after the
    /// departures of the same cycle have freed their buffers), forwarding
    /// same-cycle bypass flits straight to their reserved outputs.
    fn accept_arrivals(&mut self, now: Cycle, out: &mut StepOutputs) {
        for (port, flit) in self.data.take_pending() {
            match self.data.accept(port, flit, now) {
                ArrivalOutcome::Parked(buffer) => {
                    self.sink.buffer_alloc(now, self.node, port, buffer, &flit);
                }
                ArrivalOutcome::Bypass { out_port } => {
                    // A bypass traverses its reserved output this cycle;
                    // the output table's busy bit guarantees exclusivity.
                    if let Some(ck) = self.contracts.as_mut() {
                        ck.note_departure(out_port);
                    }
                    if out_port == Port::Local {
                        out.eject(flit, now);
                    } else {
                        self.data.note_data_sent();
                        self.sink.data_sent(now, self.node, out_port, &flit);
                        out.send(out_port, LinkEvent::Data(flit));
                    }
                }
                ArrivalOutcome::Scheduled(_, buffer) => {
                    self.sink.buffer_alloc(now, self.node, port, buffer, &flit);
                }
            }
        }
    }

    /// Routing pre-pass: compute the output port for head control flits at
    /// the front of their queues.
    fn route_control_heads(&mut self, now: Cycle) {
        for &port in &Port::ALL {
            for vc in 0..self.config.control_vcs {
                if let Some(dest) = self.control.pending_route(port, vc, now) {
                    let out = self.route.route(dest);
                    self.control.set_route(port, vc, out);
                }
            }
        }
    }

    /// Attempts to reserve departures for every still-unscheduled data
    /// flit of the control flit at the front of `(in_port, vc)`, routed to
    /// `out_port`. Returns `true` if the control flit is fully scheduled.
    ///
    /// Each attempt crosses the stage boundary as a typed
    /// [`ReservationRequest`]; the reservation stage answers with a
    /// `ReservationGrant` naming the booked departure cycle.
    ///
    /// Under per-flit scheduling, successfully booked flits stay booked
    /// even when later ones fail ("each successfully scheduled data flit
    /// can hence move on to the next hop"); under all-or-nothing a dry run
    /// against a snapshot guarantees the commit either books everything or
    /// nothing.
    fn schedule_led_flits(
        &mut self,
        in_port: Port,
        vc: usize,
        out_port: Port,
        now: Cycle,
        out: &mut StepOutputs,
    ) -> bool {
        if self.config.policy == SchedulingPolicy::AllOrNothing {
            let leds: Vec<(Cycle, bool)> = self
                .control
                .front_flit(in_port, vc)
                .expect("caller guarantees a front flit")
                .led
                .iter()
                .filter(|l| !l.scheduled)
                .map(|l| (l.arrival, self.config.same_cycle_bypass && l.arrival > now))
                .collect();
            let data = &self.data;
            let feasible = self
                .reservation
                .feasible_all(out_port, now, &leds, |c| data.departure_booked(in_port, c));
            if !feasible {
                return false;
            }
        }

        loop {
            // Copy out the next unscheduled entry (index, arrival, flit).
            let next = self
                .control
                .front_flit(in_port, vc)
                .expect("caller guarantees a front flit")
                .led
                .iter()
                .enumerate()
                .find(|(_, l)| !l.scheduled)
                .map(|(i, l)| (i, l.arrival, l.flit));
            let (idx, t_a, led_flit) = match next {
                Some(n) => n,
                None => return true,
            };
            // Demanding `remaining` free buffers guarantees this control
            // flit can always complete its schedule and travel on to
            // release the flits it has already sent ahead (the greedy
            // policy reproduces the paper's literal one-buffer rule).
            let remaining = if self.config.policy == SchedulingPolicy::PerFlitGreedy {
                1
            } else {
                self.control
                    .front_flit(in_port, vc)
                    .expect("front still present")
                    .led
                    .iter()
                    .filter(|l| !l.scheduled)
                    .count() as i64
            };
            let req = ReservationRequest {
                in_port,
                out_port,
                arrival: t_a,
                min_free: remaining,
                allow_bypass: self.config.same_cycle_bypass && t_a > now,
            };
            if let Some(ck) = self.contracts.as_mut() {
                ck.note_reservation_request(req);
            }
            // The input's single read port rejects cycles it has already
            // booked a departure on (paper footnote 7).
            let data = &self.data;
            let grant = self
                .reservation
                .try_reserve(&req, now, |c| data.departure_booked(in_port, c));
            let grant = match grant {
                Some(g) => g,
                None => {
                    // Stall; already-booked flits stand.
                    return false;
                }
            };
            if let Some(ck) = self.contracts.as_mut() {
                ck.note_reservation_grant(&req, grant);
            }
            let t_d = grant.departure;
            self.data
                .apply_reservation(in_port, t_a, t_d, out_port, now);
            // Ejection reservations hold no channel bandwidth, so only
            // mesh-port grants are traced (and must be consumed by a
            // matching data-flit departure).
            if out_port != Port::Local {
                self.sink.channel_grant(now, self.node, out_port, t_d);
            }
            self.sink
                .reservation_made(now, self.node, &led_flit, in_port, out_port, t_a, t_d);
            self.data.book_transfer(in_port, t_a, t_d);
            if out_port == Port::Local {
                // How far ahead of its data flit did this control flit
                // schedule the ejection? Negative = data flit got here
                // first and waited in the schedule list.
                self.reservation.record_dest_lead(t_a, now);
            }
            // Advance credit: the buffer at this input frees at t_d, plus
            // the plesiochronous synchronization margin (Section 5).
            let frees_at = t_d + self.config.sync_margin;
            if in_port == Port::Local {
                self.ni.inject_credit(frees_at, now);
            } else {
                self.sink.credit_sent(now, self.node, in_port, 0);
                out.send(in_port, LinkEvent::FrCredit { frees_at });
            }
            self.control
                .mark_scheduled(in_port, vc, idx, t_d + self.config.timing.data_delay);
        }
    }

    /// Processes up to `control_lanes` control flits per output port:
    /// VC allocation, output scheduling, forwarding/consumption.
    fn process_control(&mut self, now: Cycle, out: &mut StepOutputs) {
        self.route_control_heads(now);
        for &out_port in &Port::ALL {
            // Candidates: input VCs whose front flit is ready and routed
            // to this output.
            let mut candidates: Vec<(Port, usize)> = Vec::new();
            for &in_port in &Port::ALL {
                for vc in 0..self.config.control_vcs {
                    if self.control.route(in_port, vc) != Some(out_port) {
                        continue;
                    }
                    if self.control.front_ready(in_port, vc, now) {
                        candidates.push((in_port, vc));
                    }
                }
            }
            self.rng.shuffle(&mut candidates);
            candidates.truncate(self.config.control_lanes as usize);
            for (in_port, vc) in candidates {
                self.process_one_control(in_port, vc, out_port, now, out);
            }
        }
    }

    fn process_one_control(
        &mut self,
        in_port: Port,
        vc: usize,
        out_port: Port,
        now: Cycle,
        out: &mut StepOutputs,
    ) {
        // Downstream control VC allocation (heads, non-local routes): a
        // typed request into the control stage's allocator.
        if out_port != Port::Local && self.control.out_vc(in_port, vc).is_none() {
            let req = VcAllocRequest {
                in_port,
                in_vc: vc,
                out_port,
            };
            if let Some(ck) = self.contracts.as_mut() {
                ck.note_vc_request(req);
            }
            match self
                .control
                .try_alloc_out_vc(in_port, vc, out_port, &mut self.rng)
            {
                Some(granted) => {
                    if let Some(ck) = self.contracts.as_mut() {
                        ck.note_vc_grant(&req, VcAllocGrant { out_vc: granted });
                    }
                }
                None => return, // stall: no downstream control VC
            }
        }
        // Credit check before doing the scheduling work: a forwarded
        // control flit needs a downstream queue slot.
        let out_vc = if out_port == Port::Local {
            0
        } else {
            let ovc = self.control.out_vc(in_port, vc).expect("allocated above");
            if !self.control.has_credit(out_port, ovc) {
                return; // stall: downstream control queue full
            }
            ovc
        };

        if !self.schedule_led_flits(in_port, vc, out_port, now, out) {
            return; // stall: some data flit could not be scheduled yet
        }

        // Fully scheduled: consume or forward the control flit.
        let mut flit = self.control.pop_front(in_port, vc);
        let is_tail = flit.is_tail;
        if in_port != Port::Local {
            self.sink.credit_sent(now, self.node, in_port, vc as u8);
            out.send(in_port, LinkEvent::ControlCredit { vc: vc as u8 });
        }
        if out_port == Port::Local {
            // Destination: the control flit has scheduled the ejection of
            // its data flits and is consumed.
        } else {
            self.control.consume_credit(out_port, out_vc);
            flit.vc = out_vc;
            self.control.note_control_sent();
            self.sink
                .control_sent(now, self.node, out_port, out_vc, flit.packet);
            out.send(out_port, LinkEvent::Control(flit));
        }
        if is_tail {
            self.control.end_packet(in_port, vc, out_port);
        }
    }

    /// Executes booked departures: drive buffers onto output channels.
    fn run_data_path(&mut self, now: Cycle, out: &mut StepOutputs) {
        for &port in &Port::ALL {
            if let Some((flit, out_port, buffer)) = self.data.take_departure(port, now) {
                if let Some(ck) = self.contracts.as_mut() {
                    ck.note_departure(out_port);
                }
                self.sink.buffer_free(now, self.node, port, buffer, &flit);
                if out_port == Port::Local {
                    out.eject(flit, now);
                } else {
                    self.data.note_data_sent();
                    self.sink.data_sent(now, self.node, out_port, &flit);
                    out.send(out_port, LinkEvent::Data(flit));
                }
            }
        }
    }

    /// NI: stage pending packets and push their control flits into the
    /// local control input, scheduling data-flit injections.
    fn inject_control(&mut self, now: Cycle) {
        let lanes = self.config.control_lanes;
        let d = self.config.flits_per_control as usize;
        for _ in 0..lanes {
            if self.ni.staged_is_empty() && !self.ni.stage_next_packet(d) {
                break;
            }
            let is_head = self.ni.staged_front_is_head();
            // Pick / look up the local control VC for this packet.
            let vc = if is_head {
                let free: Vec<u8> = (0..self.config.control_vcs)
                    .filter(|&v| {
                        self.control.queue_len(Port::Local, v) < self.config.control_queue_depth
                    })
                    .map(|v| v as u8)
                    .collect();
                if free.is_empty() {
                    break;
                }
                let chosen = *self.rng.choose(&free);
                self.ni.bind_vc(chosen);
                chosen
            } else {
                match self.ni.current_vc() {
                    Some(v)
                        if self.control.queue_len(Port::Local, v as usize)
                            < self.config.control_queue_depth =>
                    {
                        v
                    }
                    _ => break,
                }
            };
            // Schedule the injection of this control flit's data flits. A
            // control flit is only injected "after [it has] scheduled the
            // injection times of [its] data flits".
            if !self
                .ni
                .schedule_injections(now, self.config.timing.control_lead)
            {
                break;
            }
            let mut flit = self.ni.pop_staged();
            flit.vc = vc;
            if flit.is_tail {
                self.ni.unbind_vc();
            }
            self.control.push(Port::Local, vc as usize, flit, now);
        }
    }
}

impl<S: TraceSink> Router for FrRouter<S> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn receive(&mut self, port: Port, event: LinkEvent, now: Cycle) {
        match event {
            LinkEvent::Data(flit) => {
                // Deferred to `step`: this cycle's departures must free
                // their buffers before this arrival claims one.
                self.data.queue_arrival(port, flit);
            }
            LinkEvent::Control(mut flit) => {
                // Every led flit must be rescheduled at this router.
                for led in &mut flit.led {
                    led.scheduled = false;
                }
                let vc = flit.vc as usize;
                assert!(vc < self.config.control_vcs, "control vc out of range");
                assert!(
                    self.control.queue_len(port, vc) < self.config.control_queue_depth,
                    "control queue overflow at node {} port {port}",
                    self.node
                );
                self.control.push(port, vc, flit, now);
            }
            LinkEvent::ControlCredit { vc } => {
                self.control
                    .credit_returned(port, vc, self.config.control_queue_depth);
            }
            LinkEvent::FrCredit { frees_at } => {
                // Slide the window to `now` before applying: if this
                // router was idle-skipped, the table base is stale and the
                // credit could land beyond the old window. Advancing first
                // is state-identical to the advance the step phase would
                // have performed (recycled slots inherit `tail_free`
                // either way), so stepped and skipped runs stay bit-equal.
                self.reservation.apply_credit(port, frees_at, now);
            }
            other => panic!("FR router received foreign event {other:?}"),
        }
    }

    fn try_inject(&mut self, packet: Packet, _now: Cycle) -> bool {
        self.ni.push_packet(packet);
        true
    }

    fn step(&mut self, now: Cycle, out: &mut StepOutputs) {
        if let Some(ck) = self.contracts.as_mut() {
            ck.begin_cycle();
        }
        self.reservation.advance_all(now);
        self.data.advance_all(now);
        self.ni.advance_table(now);
        if now.raw().is_multiple_of(64) {
            self.data.collect_garbage(now);
        }
        self.run_data_path(now, out);
        self.release_injections(now);
        self.accept_arrivals(now, out);
        self.process_control(now, out);
        self.inject_control(now);
        if let Some(ck) = self.contracts.as_ref() {
            for &code in ck.end_cycle() {
                self.sink.stage_violation(now, self.node, code);
            }
        }
    }

    fn occupied_data_buffers(&self, port: Port) -> usize {
        self.data.occupied(port)
    }

    fn data_buffer_capacity(&self, port: Port) -> usize {
        self.data.capacity(port)
    }

    fn queued_flits(&self) -> usize {
        let pooled: usize = Port::ALL.iter().map(|&p| self.data.occupied(p)).sum();
        pooled + self.ni.pending_flits() + self.ni.data_ready_len()
    }

    /// Quiescent when no control flit is queued at any input, the NI has
    /// nothing pending, staged or scheduled for injection, no data flit
    /// awaits buffering and every input reservation table is free of
    /// bookings, parked flits and buffered flits. Output-table `busy`
    /// entries need no separate check: every future departure booked on an
    /// output channel is paired with an input-table booking here, and the
    /// remaining free-buffer bookkeeping advances identically whether the
    /// window slides one cycle at a time or jumps on wake-up. The
    /// buffer-transfer ablation keeps per-buffer interval state with its
    /// own garbage-collection schedule, so it conservatively never idles.
    fn is_idle(&self) -> bool {
        if self.data.has_transfer_counters() {
            return false;
        }
        self.data.pending_empty()
            && self.ni.is_quiet()
            && Port::ALL
                .iter()
                .all(|&p| self.data.is_quiet(p) && self.control.port_empty(p))
    }

    fn collect_counters(&self, out: &mut noc_flow::RouterCounters) {
        out.reservation_hits = self.reservation.scheduled_flits();
        out.reservation_misses = self.reservation.reservation_misses();
        out.control_flits_sent = self.control.control_flits_sent();
        out.zero_turnaround_departures = self.data.bypassed_flits();
        out.parked_arrivals = self.data.parked_arrivals();
        out.data_flits_sent = self.data.data_flits_sent();
        out.bookings_in_flight = self.data.bookings_in_flight();
        out.masked_routes = self.route.masked_routes();
    }

    fn on_link_dead(&mut self, port: Port) {
        self.route.mask_dead(port);
    }

    fn bookings_in_flight(&self) -> u64 {
        self.data.bookings_in_flight()
    }

    /// Full post-mortem dump: every pipeline stage's live state, keyed
    /// by stage name (see DESIGN.md §12 for the schema). Reservation
    /// tables unroll into time order, so `frfc-inspect` can print the
    /// paper's Figure 4 slot occupancy directly from the dump.
    fn state_snapshot(&self) -> noc_metrics::Json {
        use noc_metrics::{Json, Snapshot};
        Json::obj(vec![
            ("family".into(), Json::str("fr")),
            ("node".into(), Json::Num(self.node.raw() as f64)),
            ("route".into(), self.route.snapshot()),
            ("control".into(), self.control.snapshot()),
            ("reservation".into(), self.reservation.snapshot()),
            ("data".into(), self.data.snapshot()),
            ("ni".into(), self.ni.snapshot()),
        ])
    }

    /// Marks every control flit that was eligible this cycle but is still
    /// queued after the step: it lost control arbitration, found no free
    /// downstream control VC, ran out of control credit, or missed a
    /// reservation-table slot for one of its data flits. Data flits never
    /// stall on credit here — their departures are pre-reserved — so the
    /// data plane emits nothing and parked waits fall into the collector's
    /// buffer-wait bucket, which is exactly the paper's claim rendered as
    /// attribution.
    fn emit_stall_provenance(&mut self, now: Cycle) {
        let scan = match StallScan::begin(&self.sink, now, self.node) {
            Some(s) => s,
            None => return,
        };
        for &in_port in &Port::ALL {
            for vc in 0..self.config.control_vcs {
                if self.control.route(in_port, vc).is_none() {
                    continue;
                }
                if let Some((packet, arrived)) = self.control.front_packet(in_port, vc) {
                    if scan.eligible(arrived) {
                        scan.control_stall(&mut self.sink, packet);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BufferAllocPolicy;
    use noc_flow::{ControlFlit, ControlKind, DataFlit, LedFlit};
    use noc_traffic::PacketId;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    fn fr_router(x: u16, y: u16, config: FrConfig) -> FrRouter {
        let m = mesh();
        FrRouter::new(m, m.node_at(x, y), config, Rng::from_seed(5))
    }

    fn packet(m: Mesh, src: (u16, u16), dst: (u16, u16), len: u32) -> Packet {
        Packet {
            id: PacketId::new(1),
            src: m.node_at(src.0, src.1),
            dest: m.node_at(dst.0, dst.1),
            length_flits: len,
            created_at: Cycle::ZERO,
        }
    }

    /// Timestamped sends and ejections collected by `drive`.
    type Driven = (Vec<(u64, Port, LinkEvent)>, Vec<(u64, DataFlit)>);

    /// Drives the router, returning (cycle, port, event) sends plus
    /// ejections.
    fn drive(r: &mut FrRouter, from: u64, to: u64) -> Driven {
        let mut sends = Vec::new();
        let mut ejections = Vec::new();
        for t in from..to {
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            for (p, e) in out.sends {
                sends.push((t, p, e));
            }
            for e in out.ejections {
                ejections.push((t, e.flit));
            }
        }
        (sends, ejections)
    }

    /// Like `drive`, but echoes a control credit back one cycle after
    /// every forwarded control flit, emulating an uncongested downstream
    /// router draining its control queues.
    fn drive_echo(r: &mut FrRouter, from: u64, to: u64) -> Driven {
        let mut sends = Vec::new();
        let mut ejections = Vec::new();
        let mut pending: Vec<(u64, Port, u8)> = Vec::new();
        for t in from..to {
            let now = Cycle::new(t);
            pending.retain(|&(due, port, vc)| {
                if due <= t {
                    r.receive(port, LinkEvent::ControlCredit { vc }, now);
                    false
                } else {
                    true
                }
            });
            let mut out = StepOutputs::new();
            r.step(now, &mut out);
            for (p, e) in out.sends {
                if let LinkEvent::Control(cf) = &e {
                    pending.push((t + 1, p, cf.vc));
                }
                sends.push((t, p, e));
            }
            for e in out.ejections {
                ejections.push((t, e.flit));
            }
        }
        (sends, ejections)
    }

    fn data_flit(seq: u32, len: u32, dest: NodeId) -> DataFlit {
        DataFlit {
            packet: PacketId::new(9),
            seq,
            length: len,
            dest,
            created_at: Cycle::ZERO,
            crc_ok: true,
        }
    }

    #[test]
    fn injected_packet_flows_east_control_before_data() {
        let m = mesh();
        let mut r = fr_router(0, 0, FrConfig::fr6());
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        let (sends, ejections) = drive_echo(&mut r, 0, 40);
        assert!(ejections.is_empty());
        let controls: Vec<(u64, &ControlFlit)> = sends
            .iter()
            .filter_map(|(t, p, e)| match e {
                LinkEvent::Control(cf) => {
                    assert_eq!(*p, Port::East);
                    Some((*t, cf))
                }
                _ => None,
            })
            .collect();
        let datas: Vec<(u64, &DataFlit)> = sends
            .iter()
            .filter_map(|(t, p, e)| match e {
                LinkEvent::Data(f) => {
                    assert_eq!(*p, Port::East);
                    Some((*t, f))
                }
                _ => None,
            })
            .collect();
        assert_eq!(controls.len(), 5, "d=1: one control flit per data flit");
        assert_eq!(datas.len(), 5);
        // The control head leads and every control flit precedes its data
        // flit on the wire.
        assert!(controls[0].1.is_head());
        assert!(controls[4].1.is_tail);
        for (ct, cf) in &controls {
            let led = &cf.led[0];
            assert!(led.scheduled);
            // The carried arrival time names the *next-hop* arrival:
            // departure + 4-cycle data link.
            let dep = led.arrival.raw() - 4;
            assert!(
                *ct < dep,
                "control flit sent at {ct} must precede data departure {dep}"
            );
            assert!(
                datas.iter().any(|(dt, _)| *dt == dep),
                "a data flit departs at the reserved cycle {dep}"
            );
        }
        // At most 2 control flits per cycle on the link.
        for t in 0..40u64 {
            let n = controls.iter().filter(|(ct, _)| *ct == t).count();
            assert!(n <= 2, "{n} control flits in cycle {t}");
        }
        // All data departures distinct (channel busy bits).
        let mut dep_cycles: Vec<u64> = datas.iter().map(|(t, _)| *t).collect();
        dep_cycles.sort_unstable();
        dep_cycles.dedup();
        assert_eq!(dep_cycles.len(), 5);
    }

    #[test]
    fn arriving_packet_is_ejected_and_credited() {
        let m = mesh();
        let mut r = fr_router(1, 0, FrConfig::fr6());
        let dest = m.node_at(1, 0);
        // A single-flit packet from the west: control head at cycle 0,
        // data flit arriving at cycle 6.
        let cf = ControlFlit {
            vc: 0,
            kind: ControlKind::Head { dest },
            is_tail: true,
            led: vec![LedFlit {
                arrival: Cycle::new(6),
                scheduled: true, // will be reset on receive
                flit: data_flit(0, 1, dest),
            }],
            packet: PacketId::new(9),
        };
        r.receive(Port::West, LinkEvent::Control(cf), Cycle::ZERO);
        let mut out = StepOutputs::new();
        r.step(Cycle::ZERO, &mut out);
        assert!(out.sends.is_empty(), "not processed until arrived+1");
        // Cycle 1: control flit processed, ejection scheduled, credits go
        // back west.
        let mut out = StepOutputs::new();
        r.step(Cycle::new(1), &mut out);
        let kinds: Vec<&LinkEvent> = out.sends.iter().map(|(_, e)| e).collect();
        assert!(kinds
            .iter()
            .any(|e| matches!(e, LinkEvent::FrCredit { .. })));
        assert!(kinds
            .iter()
            .any(|e| matches!(e, LinkEvent::ControlCredit { vc: 0 })));
        assert!(!kinds.iter().any(|e| matches!(e, LinkEvent::Control(_))));
        // Data flit arrives at 6 and must be ejected at its reserved time.
        drive(&mut r, 2, 6);
        r.receive(
            Port::West,
            LinkEvent::Data(data_flit(0, 1, dest)),
            Cycle::new(6),
        );
        let (_, ejections) = drive(&mut r, 6, 20);
        assert_eq!(ejections.len(), 1);
        // With same-cycle bypass the flit can eject in its arrival cycle.
        assert!(ejections[0].0 >= 6);
        assert_eq!(r.stats().scheduled_flits, 1);
        assert_eq!(r.stats().parked_arrivals, 0);
    }

    #[test]
    fn early_data_flit_parks_then_ejects() {
        let m = mesh();
        let mut r = fr_router(2, 2, FrConfig::fr6());
        let dest = m.node_at(2, 2);
        // Data flit beats its control flit by 3 cycles.
        r.receive(
            Port::North,
            LinkEvent::Data(data_flit(0, 1, dest)),
            Cycle::ZERO,
        );
        let mut out = StepOutputs::new();
        r.step(Cycle::ZERO, &mut out);
        assert_eq!(r.stats().parked_arrivals, 1);
        assert_eq!(r.occupied_data_buffers(Port::North), 1);
        let cf = ControlFlit {
            vc: 1,
            kind: ControlKind::Head { dest },
            is_tail: true,
            led: vec![LedFlit {
                arrival: Cycle::ZERO,
                scheduled: false,
                flit: data_flit(0, 1, dest),
            }],
            packet: PacketId::new(9),
        };
        r.receive(Port::North, LinkEvent::Control(cf), Cycle::new(3));
        let (_, ejections) = drive(&mut r, 1, 20);
        assert_eq!(ejections.len(), 1, "parked flit must still be delivered");
        assert_eq!(r.occupied_data_buffers(Port::North), 0);
    }

    #[test]
    fn leading_control_defers_data_injection() {
        let m = mesh();
        let lead = 4;
        let cfg = FrConfig::fr6().with_timing(noc_flow::LinkTiming::leading_control(lead));
        let mut r = FrRouter::new(m, m.node_at(0, 0), cfg, Rng::from_seed(5));
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        let (sends, _) = drive(&mut r, 0, 60);
        let first_control = sends
            .iter()
            .find_map(|(t, _, e)| matches!(e, LinkEvent::Control(_)).then_some(*t))
            .expect("control flits leave");
        let first_data = sends
            .iter()
            .find_map(|(t, _, e)| matches!(e, LinkEvent::Data(_)).then_some(*t))
            .expect("data flits leave");
        // The control flit was pushed at cycle 0; its data flit could not
        // be injected before cycle `lead` (and may bypass the router in
        // its injection cycle).
        assert!(first_data > first_control);
        assert!(first_data >= lead, "data deferred behind {lead}-cycle lead");
    }

    #[test]
    fn all_or_nothing_matches_per_flit_for_d1() {
        // With d = 1 a control flit leads one data flit, so the two
        // policies must schedule identically.
        let m = mesh();
        let mut per_flit = fr_router(0, 0, FrConfig::fr6());
        let mut aon = fr_router(
            0,
            0,
            FrConfig::fr6().with_policy(SchedulingPolicy::AllOrNothing),
        );
        assert!(per_flit.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        assert!(aon.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        let (sends_a, _) = drive(&mut per_flit, 0, 40);
        let (sends_b, _) = drive(&mut aon, 0, 40);
        let only_data = |v: &[(u64, Port, LinkEvent)]| -> Vec<u64> {
            v.iter()
                .filter(|(_, _, e)| matches!(e, LinkEvent::Data(_)))
                .map(|(t, _, _)| *t)
                .collect()
        };
        assert_eq!(only_data(&sends_a), only_data(&sends_b));
    }

    #[test]
    fn multi_flit_control_leads_several_data_flits() {
        let m = mesh();
        let cfg = FrConfig::fr6().with_flits_per_control(4);
        let mut r = FrRouter::new(m, m.node_at(0, 0), cfg, Rng::from_seed(5));
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        let (sends, _) = drive(&mut r, 0, 40);
        let controls: Vec<&ControlFlit> = sends
            .iter()
            .filter_map(|(_, _, e)| match e {
                LinkEvent::Control(cf) => Some(cf),
                _ => None,
            })
            .collect();
        // 5 data flits with d=4: a head leading 4 and a tail leading 1.
        assert_eq!(controls.len(), 2);
        assert_eq!(controls[0].led.len(), 4);
        assert_eq!(controls[1].led.len(), 1);
        let datas = sends
            .iter()
            .filter(|(_, _, e)| matches!(e, LinkEvent::Data(_)))
            .count();
        assert_eq!(datas, 5);
    }

    #[test]
    fn transfer_counting_is_enabled_by_policy() {
        let m = mesh();
        let cfg = FrConfig {
            buffer_alloc: BufferAllocPolicy::AtReservation,
            ..FrConfig::fr6()
        };
        let mut r = FrRouter::new(m, m.node_at(0, 0), cfg, Rng::from_seed(5));
        assert_eq!(r.buffer_transfers(), Some((0, 0)));
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        drive_echo(&mut r, 0, 40);
        let (transfers, booked) = r.buffer_transfers().unwrap();
        assert_eq!(booked, 5, "five residencies booked");
        assert_eq!(transfers, 0, "an idle router never needs transfers");
        let plain = fr_router(0, 0, FrConfig::fr6());
        assert_eq!(plain.buffer_transfers(), None);
    }

    #[test]
    #[should_panic(expected = "control queue overflow")]
    fn control_queue_overflow_panics() {
        let m = mesh();
        let mut r = fr_router(1, 1, FrConfig::fr6());
        let dest = m.node_at(3, 1);
        for i in 0..4u64 {
            let cf = ControlFlit {
                vc: 0,
                kind: if i == 0 {
                    ControlKind::Head { dest }
                } else {
                    ControlKind::Body
                },
                is_tail: false,
                led: vec![],
                packet: PacketId::new(9),
            };
            // Four arrivals with no processing in between: the 3-deep
            // control VC queue overflows.
            r.receive(Port::West, LinkEvent::Control(cf), Cycle::ZERO);
        }
    }

    #[test]
    fn queued_flits_counts_everything() {
        let m = mesh();
        let mut r = fr_router(0, 0, FrConfig::fr6());
        assert_eq!(r.queued_flits(), 0);
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        assert_eq!(r.queued_flits(), 5, "pending packet counts its flits");
        drive_echo(&mut r, 0, 60);
        assert_eq!(r.queued_flits(), 0, "everything drains");
    }

    #[test]
    fn contract_checker_stays_clean_under_load() {
        let m = mesh();
        let mut r = fr_router(1, 1, FrConfig::fr6());
        r.enable_contract_checks();
        assert!(r.try_inject(packet(m, (1, 1), (3, 1), 5), Cycle::ZERO));
        drive_echo(&mut r, 0, 60);
        let ck = r.contract_checker().expect("checker enabled");
        ck.assert_clean();
        assert_eq!(r.stats().scheduled_flits, 5);
    }
}

#[cfg(test)]
mod bypass_router_tests {
    use super::*;
    use noc_flow::{ControlFlit, ControlKind, DataFlit, LedFlit};
    use noc_traffic::PacketId;

    /// With fast control and an idle network, every data flit of a
    /// multi-hop packet should be bypassed (zero cycles in each router),
    /// which is what produces the paper's 27-vs-32 base latency gap.
    #[test]
    fn idle_network_flits_bypass_routers() {
        let m = Mesh::new(4, 4);
        let mut r = FrRouter::new(m, m.node_at(1, 0), FrConfig::fr6(), Rng::from_seed(2));
        let dest = m.node_at(3, 0);
        // Control head arrives at cycle 0 announcing a data flit at 10;
        // the router processes it at cycle 1, far ahead of the data.
        let cf = ControlFlit {
            vc: 0,
            kind: ControlKind::Head { dest },
            is_tail: true,
            led: vec![LedFlit {
                arrival: Cycle::new(10),
                scheduled: false,
                flit: DataFlit {
                    packet: PacketId::new(4),
                    seq: 0,
                    length: 1,
                    dest,
                    created_at: Cycle::ZERO,
                    crc_ok: true,
                },
            }],
            packet: PacketId::new(4),
        };
        r.receive(Port::West, LinkEvent::Control(cf), Cycle::ZERO);
        let mut sends = Vec::new();
        for t in 0..=10u64 {
            if t == 10 {
                r.receive(
                    Port::West,
                    LinkEvent::Data(DataFlit {
                        packet: PacketId::new(4),
                        seq: 0,
                        length: 1,
                        dest,
                        created_at: Cycle::ZERO,
                        crc_ok: true,
                    }),
                    Cycle::new(10),
                );
            }
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            for (p, e) in out.sends {
                sends.push((t, p, e));
            }
        }
        // The data flit left on the East port in its arrival cycle.
        let data_sends: Vec<u64> = sends
            .iter()
            .filter(|(_, _, e)| matches!(e, LinkEvent::Data(_)))
            .map(|(t, p, _)| {
                assert_eq!(*p, Port::East);
                *t
            })
            .collect();
        assert_eq!(data_sends, vec![10], "flit must bypass in cycle 10");
        assert_eq!(r.stats().bypassed_flits, 1);
        assert_eq!(r.occupied_data_buffers(Port::West), 0);
    }

    /// Disabling bypass restores the strict `t_d > t_a` of Figure 4.
    #[test]
    fn bypass_can_be_disabled() {
        let m = Mesh::new(4, 4);
        let cfg = FrConfig::fr6().with_bypass(false);
        let mut r = FrRouter::new(m, m.node_at(1, 0), cfg, Rng::from_seed(2));
        let dest = m.node_at(3, 0);
        let flit = DataFlit {
            packet: PacketId::new(4),
            seq: 0,
            length: 1,
            dest,
            created_at: Cycle::ZERO,
            crc_ok: true,
        };
        let cf = ControlFlit {
            vc: 0,
            kind: ControlKind::Head { dest },
            is_tail: true,
            led: vec![LedFlit {
                arrival: Cycle::new(10),
                scheduled: false,
                flit,
            }],
            packet: PacketId::new(4),
        };
        r.receive(Port::West, LinkEvent::Control(cf), Cycle::ZERO);
        let mut sends = Vec::new();
        for t in 0..=12u64 {
            if t == 10 {
                r.receive(Port::West, LinkEvent::Data(flit), Cycle::new(10));
            }
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            for (_, e) in out.sends {
                if matches!(e, LinkEvent::Data(_)) {
                    sends.push(t);
                }
            }
        }
        assert_eq!(sends, vec![11], "without bypass the flit buffers one cycle");
        assert_eq!(r.stats().bypassed_flits, 0);
    }
}
