//! Flit-reservation router configuration.

use noc_flow::LinkTiming;

/// Whether a control flit's data flits are scheduled independently or
/// atomically (paper Section 5, "All-or-nothing versus per-flit
/// scheduling").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Each data flit moves on as soon as its own reservation succeeds
    /// (the paper's choice: higher throughput because scheduled flits free
    /// their buffers for others).
    #[default]
    PerFlit,
    /// Data flits are only forwarded once the control flit has reservations
    /// for *all* of them. No schedule list is needed, but flits stall in
    /// the buffer pool more often.
    AllOrNothing,
    /// The paper's literal per-flit rule: each booking only requires one
    /// free downstream buffer. Fastest, but a partially scheduled control
    /// flit whose forwarded data flits fill the next node's pool can
    /// deadlock (the extended deadlock theory the paper's Section 5 calls
    /// for); [`SchedulingPolicy::PerFlit`] closes that hole by requiring
    /// as many free buffers as the control flit still has to schedule.
    /// Only meaningful for `d > 1`.
    PerFlitGreedy,
}

/// When a concrete buffer is bound to a reservation (paper Section 5,
/// "Buffer allocation at scheduling time versus just before arrival").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BufferAllocPolicy {
    /// Bind a buffer one cycle before the data flit arrives (the paper's
    /// choice; never needs buffer-to-buffer transfers).
    #[default]
    JustBeforeArrival,
    /// Bind a buffer when the reservation is made. Can force a flit to be
    /// transferred between buffers mid-residency (Figure 10); the router
    /// counts those transfers for the ablation study.
    AtReservation,
}

/// Configuration of a flit-reservation router.
///
/// # Examples
///
/// ```
/// use flit_reservation::FrConfig;
///
/// let fr6 = FrConfig::fr6();
/// assert_eq!(fr6.data_buffers, 6);
/// assert_eq!(fr6.control_vcs, 2);
/// assert_eq!(fr6.control_buffers(), 6);
/// assert_eq!(fr6.horizon, 32);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrConfig {
    /// Data buffers per input channel (`b_d`; 6 in FR6, 13 in FR13).
    pub data_buffers: usize,
    /// Control virtual channels per control link (`v_c`).
    pub control_vcs: usize,
    /// Control flit buffers per control VC (3 in both paper configs).
    pub control_queue_depth: usize,
    /// Control flits transferred per control link per cycle, and processed
    /// per output scheduler per cycle (2 in the paper).
    pub control_lanes: u32,
    /// Scheduling horizon `s` in cycles (32 in the paper; Figure 7 sweeps
    /// 16–128).
    pub horizon: u64,
    /// Data flits led by one control flit (`d`; 1 in the paper's runs).
    pub flits_per_control: u32,
    /// Per-flit or all-or-nothing scheduling.
    pub policy: SchedulingPolicy,
    /// Buffer binding time.
    pub buffer_alloc: BufferAllocPolicy,
    /// Wire delays and control lead.
    pub timing: LinkTiming,
    /// Whether a data flit whose reservation is already in the input
    /// table may depart the router in its arrival cycle ("bypasses the
    /// flit directly to the output port"). This is what removes all
    /// routing/arbitration latency from the data path; disabling it
    /// forces the `t_d > t_a` of the paper's Figure 4 walk-through even
    /// for pre-scheduled flits.
    pub same_cycle_bypass: bool,
    /// Extra cycles a buffer is *accounted* busy after its flit departs.
    /// Models the paper's plesiochronous links (Section 5,
    /// "Synchronization issues"): "buffers must be held for one extra
    /// cycle before releasing them to avoid buffer conflicts when the
    /// transmit clock slips a cycle". 0 = mesochronous (the default).
    pub sync_margin: u64,
}

impl FrConfig {
    /// Paper configuration FR6: 6 data buffers, 2 control VCs × 3, fast
    /// control — storage-matched to VC8.
    pub fn fr6() -> Self {
        FrConfig {
            data_buffers: 6,
            control_vcs: 2,
            control_queue_depth: 3,
            control_lanes: 2,
            horizon: 32,
            flits_per_control: 1,
            policy: SchedulingPolicy::PerFlit,
            buffer_alloc: BufferAllocPolicy::JustBeforeArrival,
            timing: LinkTiming::fast_control(),
            same_cycle_bypass: true,
            sync_margin: 0,
        }
    }

    /// Paper configuration FR13: 13 data buffers, 4 control VCs × 3 —
    /// storage-matched to VC16.
    pub fn fr13() -> Self {
        FrConfig {
            data_buffers: 13,
            control_vcs: 4,
            ..FrConfig::fr6()
        }
    }

    /// Replaces the timing (e.g. [`LinkTiming::leading_control`]).
    #[must_use]
    pub fn with_timing(self, timing: LinkTiming) -> Self {
        FrConfig { timing, ..self }
    }

    /// Replaces the scheduling horizon (Figure 7's sweep).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    #[must_use]
    pub fn with_horizon(self, horizon: u64) -> Self {
        assert!(horizon > 0, "scheduling horizon must be positive");
        FrConfig { horizon, ..self }
    }

    /// Replaces the scheduling policy (Section 5 ablation).
    #[must_use]
    pub fn with_policy(self, policy: SchedulingPolicy) -> Self {
        FrConfig { policy, ..self }
    }

    /// Sets the plesiochronous buffer-release margin (Section 5).
    #[must_use]
    pub fn with_sync_margin(self, sync_margin: u64) -> Self {
        FrConfig {
            sync_margin,
            ..self
        }
    }

    /// Enables or disables same-cycle bypass (ablation knob).
    #[must_use]
    pub fn with_bypass(self, same_cycle_bypass: bool) -> Self {
        FrConfig {
            same_cycle_bypass,
            ..self
        }
    }

    /// Replaces the number of data flits led per control flit.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    #[must_use]
    pub fn with_flits_per_control(self, d: u32) -> Self {
        assert!(d > 0, "a control flit must lead at least one data flit");
        FrConfig {
            flits_per_control: d,
            ..self
        }
    }

    /// Total control flit buffers per input channel (`b_c`).
    pub fn control_buffers(&self) -> usize {
        self.control_vcs * self.control_queue_depth
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero where that is meaningless.
    pub fn validate(&self) {
        assert!(self.data_buffers > 0, "need at least one data buffer");
        assert!(self.control_vcs > 0, "need at least one control VC");
        assert!(self.control_queue_depth > 0, "control queues need a slot");
        assert!(self.control_lanes > 0, "need control bandwidth");
        assert!(self.horizon > 0, "scheduling horizon must be positive");
        assert!(self.flits_per_control > 0, "d must be positive");
    }
}

impl Default for FrConfig {
    fn default() -> Self {
        FrConfig::fr6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_table1() {
        let fr6 = FrConfig::fr6();
        assert_eq!(fr6.data_buffers, 6);
        assert_eq!(fr6.control_vcs, 2);
        assert_eq!(fr6.control_buffers(), 6);
        let fr13 = FrConfig::fr13();
        assert_eq!(fr13.data_buffers, 13);
        assert_eq!(fr13.control_vcs, 4);
        assert_eq!(fr13.control_buffers(), 12);
        fr6.validate();
        fr13.validate();
    }

    #[test]
    fn builders_replace_fields() {
        let c = FrConfig::fr6()
            .with_horizon(64)
            .with_policy(SchedulingPolicy::AllOrNothing)
            .with_flits_per_control(4)
            .with_timing(LinkTiming::leading_control(2));
        assert_eq!(c.horizon, 64);
        assert_eq!(c.policy, SchedulingPolicy::AllOrNothing);
        assert_eq!(c.flits_per_control, 4);
        assert_eq!(c.timing.control_lead, 2);
        assert_eq!(c.data_buffers, 6);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_panics() {
        let _ = FrConfig::fr6().with_horizon(0);
    }

    #[test]
    fn default_is_fr6() {
        assert_eq!(FrConfig::default(), FrConfig::fr6());
    }
}
