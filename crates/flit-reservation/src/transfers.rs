//! Buffer-binding ablation (paper Section 5, Figure 10).
//!
//! The paper's router *reserves* a buffer when the input reservation is
//! made but binds a *specific* buffer only just before the flit arrives;
//! binding at reservation time can force a flit to be transferred between
//! buffers mid-residency, because reservations arrive out of arrival-time
//! order and a single buffer may not be free for the whole stay.
//!
//! [`TransferCounter`] replays the reservation stream of one input channel
//! under the bind-at-reservation policy and counts the buffer-to-buffer
//! transfers that the deferred policy avoids entirely.

use noc_engine::Cycle;

/// Books residency intervals `[t_a, t_d)` onto concrete buffers in
/// reservation order and counts the transfers needed when no single
/// buffer can host an entire stay.
///
/// # Examples
///
/// ```
/// use flit_reservation::transfers::TransferCounter;
/// use noc_engine::Cycle;
///
/// let mut counter = TransferCounter::new(2);
/// // Earlier reservations pin down the two buffers at different times...
/// counter.book(Cycle::new(0), Cycle::new(13));  // buffer 0
/// counter.book(Cycle::new(21), Cycle::new(25)); // buffer 0 again
/// counter.book(Cycle::new(13), Cycle::new(20)); // buffer 1
/// // ...so a stay spanning cycle 13 must hop between buffers once.
/// assert_eq!(counter.book(Cycle::new(11), Cycle::new(14)), 1);
/// assert_eq!(counter.transfers(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TransferCounter {
    /// Reserved intervals per buffer, kept unsorted (small sets).
    buffers: Vec<Vec<(u64, u64)>>,
    transfers: u64,
    booked: u64,
}

impl TransferCounter {
    /// Creates a counter for a pool of `capacity` buffers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pool must have at least one buffer");
        TransferCounter {
            buffers: vec![Vec::new(); capacity],
            transfers: 0,
            booked: 0,
        }
    }

    /// Total transfers counted so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total residencies booked.
    pub fn booked(&self) -> u64 {
        self.booked
    }

    /// Transfers per booked residency (0 when nothing is booked).
    pub fn transfer_rate(&self) -> f64 {
        if self.booked == 0 {
            0.0
        } else {
            self.transfers as f64 / self.booked as f64
        }
    }

    /// How long buffer `b` stays free from time `t`: `None` if occupied at
    /// `t`, otherwise the start of the next reservation (or `u64::MAX`).
    fn free_until(&self, b: usize, t: u64) -> Option<u64> {
        let mut next_start = u64::MAX;
        for &(s, e) in &self.buffers[b] {
            if s <= t && t < e {
                return None;
            }
            if s > t && s < next_start {
                next_start = s;
            }
        }
        Some(next_start)
    }

    /// Books the residency `[t_a, t_d)` and returns the number of
    /// transfers this flit needs under bind-at-reservation.
    ///
    /// # Panics
    ///
    /// Panics if `t_d <= t_a`, or if no buffer is free at some instant of
    /// the stay — the output scheduler's accounting must prevent that, so
    /// it indicates a protocol bug in the caller.
    pub fn book(&mut self, t_a: Cycle, t_d: Cycle) -> u64 {
        let (start, end) = (t_a.raw(), t_d.raw());
        assert!(end > start, "residency must be non-empty");
        self.booked += 1;
        let mut t = start;
        let mut segments = 0u64;
        while t < end {
            // Greedy: pick the buffer that stays free the longest from t.
            let mut best: Option<(usize, u64)> = None;
            for b in 0..self.buffers.len() {
                if let Some(until) = self.free_until(b, t) {
                    if best.map(|(_, u)| until > u).unwrap_or(true) {
                        best = Some((b, until));
                    }
                }
            }
            let (b, until) = best.unwrap_or_else(|| {
                panic!("no buffer free at cycle {t} despite advance reservation")
            });
            let seg_end = end.min(until);
            self.buffers[b].push((t, seg_end));
            segments += 1;
            t = seg_end;
        }
        let transfers = segments - 1;
        self.transfers += transfers;
        transfers
    }

    /// Drops interval history ending at or before `now` to bound memory.
    pub fn collect_garbage(&mut self, now: Cycle) {
        for b in &mut self.buffers {
            b.retain(|&(_, e)| e > now.raw());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_buffer_sequential_stays() {
        let mut c = TransferCounter::new(1);
        assert_eq!(c.book(Cycle::new(0), Cycle::new(5)), 0);
        assert_eq!(c.book(Cycle::new(5), Cycle::new(9)), 0);
        assert_eq!(c.transfers(), 0);
        assert_eq!(c.booked(), 2);
    }

    #[test]
    fn fitting_stay_needs_no_transfer() {
        let mut c = TransferCounter::new(2);
        c.book(Cycle::new(0), Cycle::new(10));
        assert_eq!(c.book(Cycle::new(3), Cycle::new(7)), 0);
    }

    #[test]
    fn figure10_style_transfer() {
        // Buffer 0 pinned for [0,13) and again [21,25); buffer 1 pinned
        // for [13,20) — all booked before the victim, exactly the
        // "allocated without knowledge of future reservations" situation
        // of Figure 10. A stay [11,14) fits no single buffer: during
        // [11,13) only buffer 1 is free, during [13,14) only buffer 0.
        let mut c = TransferCounter::new(2);
        c.book(Cycle::new(0), Cycle::new(13)); // buffer 0
        c.book(Cycle::new(21), Cycle::new(25)); // buffer 0 (earliest-tie)
        c.book(Cycle::new(13), Cycle::new(20)); // buffer 1 (longest-free)
        assert_eq!(c.book(Cycle::new(11), Cycle::new(14)), 1);
        assert!((c.transfer_rate() - 1.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no buffer free")]
    fn overcommitted_pool_panics() {
        let mut c = TransferCounter::new(1);
        c.book(Cycle::new(0), Cycle::new(10));
        c.book(Cycle::new(5), Cycle::new(8));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_residency_panics() {
        TransferCounter::new(1).book(Cycle::new(4), Cycle::new(4));
    }

    #[test]
    fn garbage_collection_keeps_live_intervals() {
        let mut c = TransferCounter::new(2);
        c.book(Cycle::new(0), Cycle::new(5));
        c.book(Cycle::new(2), Cycle::new(30));
        c.collect_garbage(Cycle::new(10));
        // The expired stay is gone: its buffer is bookable again.
        assert_eq!(c.book(Cycle::new(11), Cycle::new(20)), 0);
    }

    #[test]
    fn greedy_prefers_longest_free_buffer() {
        let mut c = TransferCounter::new(2);
        // A buffer booked [8,..) forces the greedy to prefer the other
        // one for a stay starting at 5.
        c.book(Cycle::new(8), Cycle::new(12));
        assert_eq!(c.book(Cycle::new(5), Cycle::new(11)), 0);
    }
}
