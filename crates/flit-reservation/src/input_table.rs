//! The input reservation table and schedule list (paper Figure 4c).
//!
//! One table per input channel orchestrates every data flit's movement
//! through the router: which buffer an arriving flit is written to, and
//! which buffer is driven onto which output channel each cycle. The
//! reservation (departure time + output channel) is filled in by the input
//! scheduler when the output scheduler reports success; the concrete
//! buffer is bound only when the flit actually arrives (the paper binds it
//! one cycle earlier; both choices avoid the buffer-interchange problem of
//! Figure 10 — the `AtReservation` ablation in `transfers.rs` quantifies
//! the alternative).
//!
//! Data flits that arrive before their control flit has completed
//! scheduling ("a data flit arrives at a node before its control flit has
//! completed its schedule") are parked in the buffer pool and tracked in a
//! logical *schedule list* keyed by arrival time; at most one flit arrives
//! per cycle per input channel, so the arrival time identifies the flit
//! unambiguously.

use noc_engine::Cycle;
use noc_flow::{BufferId, BufferPool, DataFlit};
use noc_topology::Port;

/// A reservation produced by the output scheduler for one data flit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Cycle the flit departs this router.
    pub depart: Cycle,
    /// Output channel it departs by (`Port::Local` = ejection).
    pub out_port: Port,
}

/// Departure-row entry: output channel plus the buffer bound at arrival.
#[derive(Clone, Copy, Debug)]
struct Departure {
    out_port: Port,
    buffer: Option<BufferId>,
    /// Same-cycle bypass: the flit never enters the pool; the arrival
    /// logic forwards it straight to the output.
    bypass: bool,
}

/// What happened when a data flit arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalOutcome {
    /// The reservation was already in the table; the flit was written to
    /// the returned buffer and will leave at the recorded departure time.
    Scheduled(Reservation, BufferId),
    /// The reservation departs *this* cycle: the flit bypasses the buffer
    /// pool and the caller must forward it to `out_port` immediately.
    Bypass {
        /// Output channel the flit leaves by right now.
        out_port: Port,
    },
    /// No reservation yet: the flit was parked in the returned buffer and
    /// appended to the schedule list.
    Parked(BufferId),
}

/// Input reservation table, buffer pool and schedule list for one input
/// channel.
///
/// # Examples
///
/// ```
/// use flit_reservation::{ArrivalOutcome, InputReservationTable};
/// use noc_engine::Cycle;
/// use noc_flow::DataFlit;
/// use noc_topology::{NodeId, Port};
/// use noc_traffic::PacketId;
///
/// let mut table = InputReservationTable::new(32, 6, 4);
/// let now = Cycle::ZERO;
/// table.advance_to(now);
/// // The input scheduler records: arrives at 9, departs east at 12.
/// table.apply_reservation(Cycle::new(9), Cycle::new(12), Port::East, now);
/// // ... the flit arrives at cycle 9 ...
/// let flit = DataFlit {
///     packet: PacketId::new(0), seq: 0, length: 1,
///     dest: NodeId::new(5), created_at: Cycle::ZERO, crc_ok: true,
/// };
/// table.advance_to(Cycle::new(9));
/// assert!(matches!(
///     table.on_data_arrival(flit, Cycle::new(9)),
///     ArrivalOutcome::Scheduled(..)
/// ));
/// // ... and leaves at cycle 12.
/// table.advance_to(Cycle::new(12));
/// let (departed, port, _buffer) = table.take_departure(Cycle::new(12)).unwrap();
/// assert_eq!(port, Port::East);
/// assert_eq!(departed.seq, 0);
/// ```
#[derive(Clone, Debug)]
pub struct InputReservationTable {
    window: usize,
    base: Cycle,
    /// Keyed by arrival time: reservations made before the flit arrived.
    incoming: Vec<Option<Reservation>>,
    /// Keyed by departure time: what leaves and where to.
    outgoing: Vec<Option<Departure>>,
    pool: BufferPool,
    /// Schedule list: (arrival time, buffer) of parked, unscheduled flits.
    early: Vec<(Cycle, BufferId)>,
    /// Outstanding departure bookings (`outgoing` rows still set), kept as
    /// a counter so the router's quiescence query is O(1) instead of a
    /// scan of the window.
    booked: usize,
}

impl InputReservationTable {
    /// Creates a table for an input channel with `pool_size` data buffers,
    /// scheduling horizon `horizon` and downstream propagation delay
    /// `prop_delay` (which bounds how far ahead reservations can land).
    pub fn new(horizon: u64, pool_size: usize, prop_delay: u64) -> Self {
        let window = (horizon + prop_delay + 2) as usize;
        InputReservationTable {
            window,
            base: Cycle::ZERO,
            incoming: vec![None; window],
            outgoing: vec![None; window],
            pool: BufferPool::new(pool_size),
            early: Vec::new(),
            booked: 0,
        }
    }

    fn slot(&self, t: Cycle) -> usize {
        (t.raw() % self.window as u64) as usize
    }

    fn in_window(&self, t: Cycle) -> bool {
        t >= self.base && t.raw() < self.base.raw() + self.window as u64
    }

    /// Slides the window start to `now`.
    ///
    /// # Panics
    ///
    /// Panics if time moves backwards or if an expired slot still holds a
    /// reservation (a scheduled flit that never arrived / never departed —
    /// a conservation violation).
    pub fn advance_to(&mut self, now: Cycle) {
        assert!(now >= self.base, "input table time went backwards");
        let steps = (now - self.base).min(self.window as u64);
        for i in 0..steps {
            let t = self.base + i;
            let s = self.slot(t);
            assert!(
                self.incoming[s].is_none(),
                "reserved arrival at {t} never materialised"
            );
            assert!(
                self.outgoing[s].is_none(),
                "scheduled departure at {t} never executed"
            );
        }
        self.base = now;
    }

    /// `true` if a departure is already booked for cycle `t` — the
    /// single-read-port constraint the output scheduler consults.
    pub fn departure_booked(&self, t: Cycle) -> bool {
        self.in_window(t) && self.outgoing[self.slot(t)].is_some()
    }

    /// Records a reservation `(t_a, t_d, out_port)` from the output
    /// scheduler. If the data flit already arrived (schedule list), binds
    /// its buffer immediately.
    ///
    /// # Panics
    ///
    /// Panics if the departure row at `t_d` is already booked, `t_d` is
    /// not in the future window, or a duplicate reservation exists for
    /// `t_a`.
    pub fn apply_reservation(&mut self, t_a: Cycle, t_d: Cycle, out_port: Port, now: Cycle) {
        assert!(self.in_window(t_d), "departure {t_d} outside window");
        assert!(t_d > now, "departure must be in the future");
        assert!(t_d >= t_a, "departure cannot precede arrival");
        let ds = self.slot(t_d);
        assert!(
            self.outgoing[ds].is_none(),
            "input read port double-booked at {t_d}"
        );
        self.booked += 1;
        // Has the flit already arrived? (Arrivals happen before control
        // processing within a cycle, so `t_a <= now` means it is parked.)
        if t_a <= now {
            let pos = self
                .early
                .iter()
                .position(|&(a, _)| a == t_a)
                .unwrap_or_else(|| panic!("no parked flit with arrival time {t_a}"));
            let (_, buffer) = self.early.swap_remove(pos);
            self.outgoing[ds] = Some(Departure {
                out_port,
                buffer: Some(buffer),
                bypass: false,
            });
        } else {
            assert!(self.in_window(t_a), "arrival {t_a} outside window");
            let s = self.slot(t_a);
            assert!(
                self.incoming[s].is_none(),
                "duplicate arrival reservation at {t_a}"
            );
            self.incoming[s] = Some(Reservation {
                depart: t_d,
                out_port,
            });
            self.outgoing[ds] = Some(Departure {
                out_port,
                buffer: None,
                bypass: t_d == t_a,
            });
        }
    }

    /// Handles a data flit arriving on this input channel at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer pool is full — the upstream output scheduler's
    /// accounting guarantees a buffer, so exhaustion is a protocol bug.
    pub fn on_data_arrival(&mut self, flit: DataFlit, now: Cycle) -> ArrivalOutcome {
        let s = self.slot(now);
        // Same-cycle bypass: consume the departure row and never touch
        // the pool.
        if let Some(res) = self.incoming[s] {
            if res.depart == now {
                self.incoming[s] = None;
                let ds = self.slot(now);
                let dep = self.outgoing[ds]
                    .take()
                    .expect("bypass reservation without departure row");
                debug_assert!(dep.bypass, "same-cycle departure must be a bypass");
                self.booked -= 1;
                return ArrivalOutcome::Bypass {
                    out_port: dep.out_port,
                };
            }
        }
        let buffer = self
            .pool
            .insert(flit)
            .expect("buffer pool exhausted despite advance reservation");
        match self.incoming[s].take() {
            Some(res) => {
                let ds = self.slot(res.depart);
                let dep = self.outgoing[ds]
                    .as_mut()
                    .expect("incoming reservation without departure row");
                debug_assert!(dep.buffer.is_none(), "departure buffer already bound");
                dep.buffer = Some(buffer);
                ArrivalOutcome::Scheduled(res, buffer)
            }
            None => {
                self.early.push((now, buffer));
                ArrivalOutcome::Parked(buffer)
            }
        }
    }

    /// Executes the departure booked for cycle `now`, if any, returning
    /// the flit, its output channel and the buffer it vacated.
    ///
    /// # Panics
    ///
    /// Panics if a departure is booked but its buffer was never bound
    /// (the data flit did not arrive in time — a protocol bug).
    pub fn take_departure(&mut self, now: Cycle) -> Option<(DataFlit, Port, BufferId)> {
        let s = self.slot(now);
        // Bypass departures are executed by the arrival logic, not here.
        if self.outgoing[s].map(|d| d.bypass).unwrap_or(false) {
            return None;
        }
        let dep = self.outgoing[s].take()?;
        self.booked -= 1;
        let buffer = dep
            .buffer
            .expect("departure due but data flit never arrived");
        let flit = self.pool.take(buffer);
        Some((flit, dep.out_port, buffer))
    }

    /// Buffers currently occupied.
    pub fn occupied(&self) -> usize {
        self.pool.occupied_count()
    }

    /// Pool capacity.
    pub fn capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// `true` when every buffer is occupied (the Section 4.2 probe).
    pub fn is_full(&self) -> bool {
        self.pool.is_full()
    }

    /// Number of parked (arrived-but-unscheduled) flits.
    pub fn parked(&self) -> usize {
        self.early.len()
    }

    /// Outstanding departure bookings (reservations applied but not yet
    /// executed), including bookings whose data flit has not arrived yet.
    pub fn pending_departures(&self) -> usize {
        self.booked
    }

    /// `true` when the table holds no state that obligates future work:
    /// no buffered flits, no parked flits and no outstanding bookings.
    /// In this state [`Self::advance_to`] may jump any number of cycles
    /// without tripping its expired-slot assertions, which is what lets
    /// the network skip stepping an idle router.
    pub fn is_quiet(&self) -> bool {
        self.booked == 0 && self.early.is_empty() && self.pool.occupied_count() == 0
    }
}

impl noc_metrics::Snapshot for InputReservationTable {
    /// Unrolls both slot rings into time order from `base`. `incoming`
    /// lists pending arrival reservations as `(arrival, depart,
    /// out_port)`; `outgoing` lists booked departures as `(depart,
    /// out_port, buffer, bypass)`. The schedule list is sorted by
    /// arrival time (its internal order is a `swap_remove` artefact).
    fn snapshot(&self) -> noc_metrics::Json {
        use noc_metrics::Json;
        let mut incoming = Vec::new();
        let mut outgoing = Vec::new();
        for i in 0..self.window {
            let t = self.base + i as u64;
            let s = self.slot(t);
            if let Some(res) = self.incoming[s] {
                incoming.push(Json::obj(vec![
                    ("arrival".into(), Json::Num(t.raw() as f64)),
                    ("depart".into(), Json::Num(res.depart.raw() as f64)),
                    ("out_port".into(), Json::str(format!("{:?}", res.out_port))),
                ]));
            }
            if let Some(dep) = self.outgoing[s] {
                outgoing.push(Json::obj(vec![
                    ("depart".into(), Json::Num(t.raw() as f64)),
                    ("out_port".into(), Json::str(format!("{:?}", dep.out_port))),
                    (
                        "buffer".into(),
                        match dep.buffer {
                            Some(b) => Json::Num(b.index() as f64),
                            None => Json::Null,
                        },
                    ),
                    ("bypass".into(), Json::Bool(dep.bypass)),
                ]));
            }
        }
        let mut early: Vec<(u64, u8)> = self
            .early
            .iter()
            .map(|&(at, buf)| (at.raw(), buf.raw()))
            .collect();
        early.sort_unstable();
        let parked: Vec<Json> = early
            .into_iter()
            .map(|(at, buf)| {
                Json::obj(vec![
                    ("arrived".into(), Json::Num(at as f64)),
                    ("buffer".into(), Json::Num(buf as f64)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("base".into(), Json::Num(self.base.raw() as f64)),
            ("booked".into(), Json::Num(self.booked as f64)),
            ("incoming".into(), Json::Arr(incoming)),
            ("outgoing".into(), Json::Arr(outgoing)),
            ("parked".into(), Json::Arr(parked)),
            ("pool".into(), self.pool.snapshot()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::NodeId;
    use noc_traffic::PacketId;

    fn flit(seq: u32) -> DataFlit {
        DataFlit {
            packet: PacketId::new(3),
            seq,
            length: 5,
            dest: NodeId::new(0),
            created_at: Cycle::ZERO,
            crc_ok: true,
        }
    }

    fn table() -> InputReservationTable {
        InputReservationTable::new(32, 6, 4)
    }

    #[test]
    fn reservation_then_arrival_then_departure() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        t.apply_reservation(Cycle::new(5), Cycle::new(8), Port::East, Cycle::ZERO);
        assert!(t.departure_booked(Cycle::new(8)));
        assert!(!t.departure_booked(Cycle::new(7)));
        t.advance_to(Cycle::new(5));
        let outcome = t.on_data_arrival(flit(0), Cycle::new(5));
        let ArrivalOutcome::Scheduled(res, buffer) = outcome else {
            panic!("expected a scheduled arrival, got {outcome:?}");
        };
        assert_eq!(
            res,
            Reservation {
                depart: Cycle::new(8),
                out_port: Port::East
            }
        );
        assert_eq!(t.occupied(), 1);
        t.advance_to(Cycle::new(8));
        let (f, port, freed) = t.take_departure(Cycle::new(8)).unwrap();
        assert_eq!(f.seq, 0);
        assert_eq!(port, Port::East);
        assert_eq!(freed, buffer, "departure vacates the arrival's buffer");
        assert_eq!(t.occupied(), 0);
    }

    #[test]
    fn early_arrival_parks_then_matches() {
        let mut t = table();
        t.advance_to(Cycle::new(4));
        assert!(matches!(
            t.on_data_arrival(flit(1), Cycle::new(4)),
            ArrivalOutcome::Parked(_)
        ));
        assert_eq!(t.parked(), 1);
        t.advance_to(Cycle::new(6));
        // Control flit catches up two cycles later.
        t.apply_reservation(Cycle::new(4), Cycle::new(9), Port::South, Cycle::new(6));
        assert_eq!(t.parked(), 0);
        t.advance_to(Cycle::new(9));
        let (f, port, _) = t.take_departure(Cycle::new(9)).unwrap();
        assert_eq!(f.seq, 1);
        assert_eq!(port, Port::South);
    }

    #[test]
    fn quiescence_tracks_bookings_parked_and_occupancy() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        assert!(t.is_quiet());
        assert_eq!(t.pending_departures(), 0);
        // A booking alone (flit not yet arrived) is not quiet.
        t.apply_reservation(Cycle::new(5), Cycle::new(8), Port::East, Cycle::ZERO);
        assert!(!t.is_quiet());
        assert_eq!(t.pending_departures(), 1);
        t.advance_to(Cycle::new(5));
        t.on_data_arrival(flit(0), Cycle::new(5));
        assert!(!t.is_quiet());
        t.advance_to(Cycle::new(8));
        t.take_departure(Cycle::new(8)).unwrap();
        assert!(t.is_quiet());
        // A parked flit alone is not quiet either.
        t.advance_to(Cycle::new(9));
        t.on_data_arrival(flit(1), Cycle::new(9));
        assert!(!t.is_quiet());
        assert_eq!(t.pending_departures(), 0);
    }

    #[test]
    fn bypass_consumes_its_booking() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        t.apply_reservation(Cycle::new(4), Cycle::new(4), Port::East, Cycle::ZERO);
        assert_eq!(t.pending_departures(), 1);
        t.advance_to(Cycle::new(4));
        assert!(matches!(
            t.on_data_arrival(flit(0), Cycle::new(4)),
            ArrivalOutcome::Bypass { .. }
        ));
        assert!(t.is_quiet());
    }

    #[test]
    fn no_departure_when_nothing_booked() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        assert_eq!(t.take_departure(Cycle::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn conflicting_departures_panic() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        t.apply_reservation(Cycle::new(2), Cycle::new(6), Port::East, Cycle::ZERO);
        t.apply_reservation(Cycle::new(3), Cycle::new(6), Port::West, Cycle::ZERO);
    }

    #[test]
    #[should_panic(expected = "no parked flit")]
    fn reservation_for_missing_parked_flit_panics() {
        let mut t = table();
        t.advance_to(Cycle::new(5));
        t.apply_reservation(Cycle::new(3), Cycle::new(8), Port::East, Cycle::new(5));
    }

    #[test]
    #[should_panic(expected = "pool exhausted")]
    fn pool_overflow_panics() {
        let mut t = InputReservationTable::new(32, 2, 4);
        t.advance_to(Cycle::ZERO);
        t.on_data_arrival(flit(0), Cycle::ZERO);
        t.advance_to(Cycle::new(1));
        t.on_data_arrival(flit(1), Cycle::new(1));
        t.advance_to(Cycle::new(2));
        t.on_data_arrival(flit(2), Cycle::new(2));
    }

    #[test]
    fn occupancy_probe() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        assert!(!t.is_full());
        for i in 0..6u64 {
            t.advance_to(Cycle::new(i));
            t.on_data_arrival(flit(i as u32), Cycle::new(i));
        }
        assert!(t.is_full());
        assert_eq!(t.capacity(), 6);
    }

    #[test]
    #[should_panic(expected = "never executed")]
    fn expired_departure_panics() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        t.apply_reservation(Cycle::new(2), Cycle::new(3), Port::East, Cycle::ZERO);
        t.advance_to(Cycle::new(2));
        t.on_data_arrival(flit(0), Cycle::new(2));
        // Skip past the departure without executing it.
        t.advance_to(Cycle::new(10));
    }

    #[test]
    fn multiple_parked_flits_match_by_arrival_time() {
        let mut t = table();
        for i in 0..3u64 {
            t.advance_to(Cycle::new(i));
            t.on_data_arrival(flit(i as u32), Cycle::new(i));
        }
        t.advance_to(Cycle::new(3));
        // Schedule the middle one first.
        t.apply_reservation(Cycle::new(1), Cycle::new(5), Port::North, Cycle::new(3));
        t.apply_reservation(Cycle::new(0), Cycle::new(4), Port::East, Cycle::new(3));
        t.apply_reservation(Cycle::new(2), Cycle::new(6), Port::West, Cycle::new(3));
        t.advance_to(Cycle::new(4));
        assert_eq!(t.take_departure(Cycle::new(4)).unwrap().0.seq, 0);
        t.advance_to(Cycle::new(5));
        assert_eq!(t.take_departure(Cycle::new(5)).unwrap().0.seq, 1);
        t.advance_to(Cycle::new(6));
        assert_eq!(t.take_departure(Cycle::new(6)).unwrap().0.seq, 2);
    }

    #[test]
    fn departure_reports_the_vacated_buffer() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        t.apply_reservation(Cycle::new(1), Cycle::new(4), Port::East, Cycle::ZERO);
        t.advance_to(Cycle::new(1));
        let ArrivalOutcome::Scheduled(_, allocated) = t.on_data_arrival(flit(0), Cycle::new(1))
        else {
            panic!("arrival must be scheduled");
        };
        t.advance_to(Cycle::new(4));
        let (_, _, freed) = t.take_departure(Cycle::new(4)).unwrap();
        assert_eq!(freed, allocated);
    }
}

#[cfg(test)]
mod bypass_tests {
    use super::*;
    use noc_topology::NodeId;
    use noc_traffic::PacketId;

    fn flit(seq: u32) -> DataFlit {
        DataFlit {
            packet: PacketId::new(7),
            seq,
            length: 2,
            dest: NodeId::new(1),
            created_at: Cycle::ZERO,
            crc_ok: true,
        }
    }

    #[test]
    fn same_cycle_reservation_bypasses_the_pool() {
        let mut t = InputReservationTable::new(32, 6, 4);
        t.advance_to(Cycle::ZERO);
        // Reservation made ahead of time with t_d == t_a.
        t.apply_reservation(Cycle::new(5), Cycle::new(5), Port::East, Cycle::ZERO);
        assert!(t.departure_booked(Cycle::new(5)));
        // The data path must not try to read the pool at cycle 5.
        t.advance_to(Cycle::new(5));
        assert_eq!(t.take_departure(Cycle::new(5)), None);
        // The arrival consumes both rows and never touches a buffer.
        let outcome = t.on_data_arrival(flit(0), Cycle::new(5));
        assert_eq!(
            outcome,
            ArrivalOutcome::Bypass {
                out_port: Port::East
            }
        );
        assert_eq!(t.occupied(), 0);
        assert!(!t.departure_booked(Cycle::new(5)));
        // The table is clean: advancing past cycle 5 does not panic.
        t.advance_to(Cycle::new(10));
    }

    #[test]
    fn bypass_and_buffered_flits_coexist() {
        let mut t = InputReservationTable::new(32, 6, 4);
        t.advance_to(Cycle::ZERO);
        // Flit A: buffered stay [3, 7); flit B: bypass at 5.
        t.apply_reservation(Cycle::new(3), Cycle::new(7), Port::North, Cycle::ZERO);
        t.apply_reservation(Cycle::new(5), Cycle::new(5), Port::East, Cycle::ZERO);
        t.advance_to(Cycle::new(3));
        assert!(matches!(
            t.on_data_arrival(flit(0), Cycle::new(3)),
            ArrivalOutcome::Scheduled(..)
        ));
        assert_eq!(t.occupied(), 1);
        t.advance_to(Cycle::new(5));
        assert!(matches!(
            t.on_data_arrival(flit(1), Cycle::new(5)),
            ArrivalOutcome::Bypass { .. }
        ));
        assert_eq!(t.occupied(), 1, "bypass leaves the buffered flit alone");
        t.advance_to(Cycle::new(7));
        let (f, port, _) = t.take_departure(Cycle::new(7)).unwrap();
        assert_eq!(f.seq, 0);
        assert_eq!(port, Port::North);
        assert_eq!(t.occupied(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot precede arrival")]
    fn departure_before_arrival_panics() {
        let mut t = InputReservationTable::new(32, 6, 4);
        t.advance_to(Cycle::ZERO);
        t.apply_reservation(Cycle::new(6), Cycle::new(5), Port::East, Cycle::ZERO);
    }
}
