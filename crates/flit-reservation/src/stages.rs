//! Concrete pipeline stages of the flit-reservation router.
//!
//! Each stage owns one slice of the router's state and answers typed
//! requests from the driver ([`crate::FrRouter`]'s `step`); no stage
//! reaches into another's fields. The stage chain mirrors the paper's
//! Figure 3 split between the control and data networks:
//!
//! * route compute — `noc_flow::pipeline::RouteCompute`, shared with
//!   the VC baseline;
//! * control plane — [`ControlStage`], owning the per-VC control
//!   queues, downstream control-VC ownership and control credits (the
//!   FR analogue of VC allocation);
//! * reservation match — [`ReservationStage`], owning the output
//!   reservation tables that answer `ReservationRequest`s;
//! * data path — [`DataPathStage`], owning the input reservation
//!   tables, buffer pools and the arrival staging area (traversal is
//!   table-directed: "there are no decisions to be made");
//! * injection — [`FrNiStage`], the network interface with its own
//!   injection reservation table.

#![deny(private_interfaces, private_bounds)]

use crate::transfers::TransferCounter;
use crate::{ArrivalOutcome, FrConfig, InputReservationTable, OutputReservationTable};
use noc_engine::stats::RunningStats;
use noc_engine::{Cycle, Rng};
use noc_flow::pipeline::{ReservationGrant, ReservationRequest};
use noc_flow::{BufferId, ControlFlit, ControlKind, DataFlit, LedFlit};
use noc_metrics::Json;
use noc_topology::{NodeId, Port, PortMap};
use noc_traffic::{Packet, PacketId};
use std::collections::VecDeque;

/// A control flit waiting in an input control-VC queue.
#[derive(Clone, Debug)]
struct QueuedControl {
    flit: ControlFlit,
    arrived: Cycle,
}

/// Per-input control VC state.
#[derive(Clone, Debug)]
struct ControlVc {
    queue: VecDeque<QueuedControl>,
    /// Output port of the packet currently flowing through this VC.
    route: Option<Port>,
    /// Downstream control VC granted to that packet.
    out_vc: Option<u8>,
}

impl ControlVc {
    fn new() -> Self {
        ControlVc {
            queue: VecDeque::new(),
            route: None,
            out_vc: None,
        }
    }
}

/// The control-plane stage: per-input control-VC queues, downstream
/// control-VC ownership and control credits. Its VC allocation is the
/// FR counterpart of the baseline's `VcAllocStage`, driven by the same
/// typed request/grant contract.
#[derive(Clone, Debug)]
pub(crate) struct ControlStage {
    /// Control input queues: per input port, per control VC.
    inputs: PortMap<Vec<ControlVc>>,
    /// Credits for downstream control-VC queues, per output port.
    credits: PortMap<Vec<usize>>,
    /// Downstream control-VC ownership, per output port.
    vc_owner: PortMap<Vec<bool>>,
    control_flits_sent: u64,
}

impl ControlStage {
    pub(crate) fn new(config: &FrConfig) -> Self {
        ControlStage {
            inputs: PortMap::from_fn(|_| {
                (0..config.control_vcs).map(|_| ControlVc::new()).collect()
            }),
            credits: PortMap::from_fn(|_| vec![config.control_queue_depth; config.control_vcs]),
            vc_owner: PortMap::from_fn(|_| vec![false; config.control_vcs]),
            control_flits_sent: 0,
        }
    }

    /// The destination of an unrouted head control flit that is
    /// eligible for route compute this cycle (arrived before `now`).
    pub(crate) fn pending_route(&self, port: Port, vc: usize, now: Cycle) -> Option<NodeId> {
        let cvc = &self.inputs[port][vc];
        match cvc.queue.front() {
            Some(qc) if qc.flit.is_head() && cvc.route.is_none() && qc.arrived < now => {
                match qc.flit.kind {
                    ControlKind::Head { dest } => Some(dest),
                    ControlKind::Body => None,
                }
            }
            _ => None,
        }
    }

    /// Installs the route-compute answer for lane (`port`, `vc`).
    pub(crate) fn set_route(&mut self, port: Port, vc: usize, out: Port) {
        self.inputs[port][vc].route = Some(out);
    }

    /// The output port the lane's current packet is routed to, if any.
    pub(crate) fn route(&self, port: Port, vc: usize) -> Option<Port> {
        self.inputs[port][vc].route
    }

    /// True if the lane's front control flit is eligible for
    /// processing this cycle (arrived before `now`).
    pub(crate) fn front_ready(&self, port: Port, vc: usize, now: Cycle) -> bool {
        matches!(self.inputs[port][vc].queue.front(), Some(qc) if qc.arrived < now)
    }

    /// The downstream control VC held by the lane's packet, if any.
    pub(crate) fn out_vc(&self, port: Port, vc: usize) -> Option<u8> {
        self.inputs[port][vc].out_vc
    }

    /// Allocates a free downstream control VC on `out_port` to the
    /// packet in lane (`port`, `vc`), uniformly at random; `None` when
    /// every VC is owned (the lane stalls and retries).
    pub(crate) fn try_alloc_out_vc(
        &mut self,
        port: Port,
        vc: usize,
        out_port: Port,
        rng: &mut Rng,
    ) -> Option<u8> {
        let free: Vec<u8> = self.vc_owner[out_port]
            .iter()
            .enumerate()
            .filter(|(_, &owned)| !owned)
            .map(|(v, _)| v as u8)
            .collect();
        if free.is_empty() {
            return None;
        }
        let granted = *rng.choose(&free);
        self.vc_owner[out_port][granted as usize] = true;
        self.inputs[port][vc].out_vc = Some(granted);
        Some(granted)
    }

    /// True if a forwarded control flit has a downstream queue slot on
    /// (`out_port`, `out_vc`).
    pub(crate) fn has_credit(&self, out_port: Port, out_vc: u8) -> bool {
        self.credits[out_port][out_vc as usize] > 0
    }

    /// Spends one downstream control-queue slot for a forwarded flit.
    pub(crate) fn consume_credit(&mut self, out_port: Port, out_vc: u8) {
        self.credits[out_port][out_vc as usize] -= 1;
    }

    /// Applies a control credit arriving on output `port` for `vc`.
    pub(crate) fn credit_returned(&mut self, port: Port, vc: u8, depth: usize) {
        let c = &mut self.credits[port][vc as usize];
        *c += 1;
        debug_assert!(*c <= depth, "control credit overflow");
    }

    /// The lane's front control flit, if any.
    pub(crate) fn front_flit(&self, port: Port, vc: usize) -> Option<&ControlFlit> {
        self.inputs[port][vc].queue.front().map(|qc| &qc.flit)
    }

    /// The packet id and arrival cycle of the lane's front control
    /// flit, for the stall-provenance scan.
    pub(crate) fn front_packet(&self, port: Port, vc: usize) -> Option<(PacketId, Cycle)> {
        self.inputs[port][vc]
            .queue
            .front()
            .map(|qc| (qc.flit.packet, qc.arrived))
    }

    /// Records a booked departure into the front control flit's led
    /// entry `idx`: the carried arrival time becomes the next-hop
    /// arrival and the entry stops requesting reservations here.
    ///
    /// # Panics
    ///
    /// Panics if the lane is empty.
    pub(crate) fn mark_scheduled(&mut self, port: Port, vc: usize, idx: usize, arrival: Cycle) {
        let front = self.inputs[port][vc]
            .queue
            .front_mut()
            .expect("front still present");
        front.flit.led[idx].arrival = arrival;
        front.flit.led[idx].scheduled = true;
    }

    /// Pops the fully scheduled front control flit of the lane.
    ///
    /// # Panics
    ///
    /// Panics if the lane is empty: only fully scheduled fronts pop.
    pub(crate) fn pop_front(&mut self, port: Port, vc: usize) -> ControlFlit {
        self.inputs[port][vc]
            .queue
            .pop_front()
            .expect("front present")
            .flit
    }

    /// Buffers a control flit at the back of lane (`port`, `vc`). The
    /// driver checks queue depth first (its assertion names the node).
    pub(crate) fn push(&mut self, port: Port, vc: usize, flit: ControlFlit, arrived: Cycle) {
        self.inputs[port][vc]
            .queue
            .push_back(QueuedControl { flit, arrived });
    }

    /// Control flits queued in lane (`port`, `vc`).
    pub(crate) fn queue_len(&self, port: Port, vc: usize) -> usize {
        self.inputs[port][vc].queue.len()
    }

    /// Clears the lane's allocation after its packet's tail was
    /// consumed or forwarded, releasing the downstream control VC.
    ///
    /// # Panics
    ///
    /// Panics if a non-local tail departs without an allocated VC.
    pub(crate) fn end_packet(&mut self, port: Port, vc: usize, out_port: Port) {
        let cvc = &mut self.inputs[port][vc];
        cvc.route = None;
        if out_port != Port::Local {
            let ovc = cvc.out_vc.expect("tail releases an allocated VC");
            self.vc_owner[out_port][ovc as usize] = false;
        }
        cvc.out_vc = None;
    }

    /// True if every control queue of `port` is empty.
    pub(crate) fn port_empty(&self, port: Port) -> bool {
        self.inputs[port].iter().all(|vc| vc.queue.is_empty())
    }

    /// Counts a control flit forwarded onto an outgoing control link.
    pub(crate) fn note_control_sent(&mut self) {
        self.control_flits_sent += 1;
    }

    pub(crate) fn control_flits_sent(&self) -> u64 {
        self.control_flits_sent
    }

    /// Dumps every control lane holding live state, plus credit and
    /// downstream-VC-ownership accounting per output port.
    pub(crate) fn snapshot(&self) -> Json {
        let mut ports = Vec::new();
        for &port in &Port::ALL {
            let mut lanes = Vec::new();
            for (vc, cvc) in self.inputs[port].iter().enumerate() {
                if cvc.queue.is_empty() && cvc.route.is_none() && cvc.out_vc.is_none() {
                    continue;
                }
                let queue: Vec<Json> = cvc
                    .queue
                    .iter()
                    .map(|qc| Json::str(format!("{:?} arrived={}", qc.flit, qc.arrived.raw())))
                    .collect();
                lanes.push(Json::obj(vec![
                    ("vc".into(), Json::Num(vc as f64)),
                    (
                        "route".into(),
                        match cvc.route {
                            Some(p) => Json::str(format!("{p:?}")),
                            None => Json::Null,
                        },
                    ),
                    (
                        "out_vc".into(),
                        match cvc.out_vc {
                            Some(v) => Json::Num(v as f64),
                            None => Json::Null,
                        },
                    ),
                    ("queue".into(), Json::Arr(queue)),
                ]));
            }
            if !lanes.is_empty() {
                ports.push(Json::obj(vec![
                    ("port".into(), Json::str(format!("{port:?}"))),
                    ("lanes".into(), Json::Arr(lanes)),
                ]));
            }
        }
        let accounting: Vec<Json> = Port::ALL
            .iter()
            .map(|&port| {
                Json::obj(vec![
                    ("port".into(), Json::str(format!("{port:?}"))),
                    (
                        "credits".into(),
                        Json::Arr(
                            self.credits[port]
                                .iter()
                                .map(|&c| Json::Num(c as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "vc_owner".into(),
                        Json::Arr(self.vc_owner[port].iter().map(|&o| Json::Bool(o)).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("inputs".into(), Json::Arr(ports)),
            ("accounting".into(), Json::Arr(accounting)),
            (
                "control_flits_sent".into(),
                Json::Num(self.control_flits_sent as f64),
            ),
        ])
    }
}

/// The reservation-match stage: the per-output reservation tables and
/// the scheduling counters. Answers [`ReservationRequest`]s with booked
/// departure slots.
#[derive(Clone, Debug)]
pub(crate) struct ReservationStage {
    /// Output reservation tables, per output port.
    tables: PortMap<OutputReservationTable>,
    scheduled_flits: u64,
    reservation_misses: u64,
    /// Lead of ejection-scheduling control flits over their data flits.
    dest_lead: RunningStats,
}

impl ReservationStage {
    pub(crate) fn new(config: &FrConfig) -> Self {
        let horizon = config.horizon;
        let t = config.timing;
        ReservationStage {
            tables: PortMap::from_fn(|p| {
                if p == Port::Local {
                    // Ejection channel: 1 flit/cycle into unbounded
                    // reassembly buffers, no propagation.
                    OutputReservationTable::new(horizon, None, 0)
                } else {
                    OutputReservationTable::new(horizon, Some(config.data_buffers), t.data_delay)
                }
            }),
            scheduled_flits: 0,
            reservation_misses: 0,
            dest_lead: RunningStats::default(),
        }
    }

    /// Slides every table's window to `now`.
    pub(crate) fn advance_all(&mut self, now: Cycle) {
        for (_, table) in self.tables.iter_mut() {
            table.advance_to(now);
        }
    }

    /// Applies an advance credit arriving on output `port`, sliding the
    /// window first in case this router was idle-skipped.
    pub(crate) fn apply_credit(&mut self, port: Port, frees_at: Cycle, now: Cycle) {
        let table = &mut self.tables[port];
        table.advance_to(now);
        table.credit(frees_at, now);
    }

    /// All-or-nothing dry run: true when every led entry in `leds`
    /// (arrival, bypass-allowed) can be booked on `out_port` against a
    /// snapshot, with `blocked` rejecting cycles the input's read port
    /// already holds. A failed dry run counts one reservation miss.
    pub(crate) fn feasible_all(
        &mut self,
        out_port: Port,
        now: Cycle,
        leds: &[(Cycle, bool)],
        mut blocked: impl FnMut(Cycle) -> bool,
    ) -> bool {
        let mut snapshot = self.tables[out_port].clone();
        let mut booked: Vec<Cycle> = Vec::new();
        let mut remaining = leds.len() as i64;
        for &(t_a, allow_bypass) in leds {
            let found = snapshot.schedule_search(t_a, now, remaining, allow_bypass, |c| {
                !blocked(c) && !booked.contains(&c)
            });
            match found {
                Some(t_d) => {
                    snapshot.reserve(t_d);
                    booked.push(t_d);
                    remaining -= 1;
                }
                None => {
                    self.reservation_misses += 1;
                    return false;
                }
            }
        }
        true
    }

    /// Answers a reservation request: searches `req.out_port`'s table
    /// and commits the earliest feasible departure. `None` (counting a
    /// miss) when no slot exists within the horizon; `blocked` rejects
    /// cycles where the requesting input already has a departure booked
    /// (single-read-port input buffers, paper footnote 7).
    pub(crate) fn try_reserve(
        &mut self,
        req: &ReservationRequest,
        now: Cycle,
        mut blocked: impl FnMut(Cycle) -> bool,
    ) -> Option<ReservationGrant> {
        let found = self.tables[req.out_port].schedule_search(
            req.arrival,
            now,
            req.min_free,
            req.allow_bypass,
            |c| !blocked(c),
        );
        match found {
            Some(t_d) => {
                self.tables[req.out_port].reserve(t_d);
                self.scheduled_flits += 1;
                Some(ReservationGrant { departure: t_d })
            }
            None => {
                self.reservation_misses += 1;
                None
            }
        }
    }

    /// Samples how far ahead of its data flit an ejection-scheduling
    /// control flit ran (negative = the data flit got here first).
    pub(crate) fn record_dest_lead(&mut self, t_a: Cycle, now: Cycle) {
        self.dest_lead.record(t_a.raw() as f64 - now.raw() as f64);
    }

    pub(crate) fn scheduled_flits(&self) -> u64 {
        self.scheduled_flits
    }

    pub(crate) fn reservation_misses(&self) -> u64 {
        self.reservation_misses
    }

    pub(crate) fn dest_lead(&self) -> &RunningStats {
        &self.dest_lead
    }

    /// Dumps every output reservation table keyed by port, plus the
    /// scheduling counters.
    pub(crate) fn snapshot(&self) -> Json {
        use noc_metrics::Snapshot;
        let tables: Vec<Json> = Port::ALL
            .iter()
            .map(|&port| {
                Json::obj(vec![
                    ("port".into(), Json::str(format!("{port:?}"))),
                    ("table".into(), self.tables[port].snapshot()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("tables".into(), Json::Arr(tables)),
            (
                "scheduled_flits".into(),
                Json::Num(self.scheduled_flits as f64),
            ),
            (
                "reservation_misses".into(),
                Json::Num(self.reservation_misses as f64),
            ),
        ])
    }
}

/// The data-path stage: input reservation tables (and buffer pools),
/// the arrival staging area and the traversal counters. Departures are
/// table-directed; this stage makes no decisions.
#[derive(Clone, Debug)]
pub(crate) struct DataPathStage {
    /// Input reservation tables, per input port.
    tables: PortMap<InputReservationTable>,
    /// Data flits that arrived on links this cycle, buffered until the
    /// data path has executed this cycle's departures: a buffer freed
    /// at `t_d` may be reused by a flit arriving the same cycle, so
    /// departures (reads) must run before arrivals (writes).
    pending: Vec<(Port, DataFlit)>,
    /// Present only under the bind-at-reservation ablation: per-input
    /// interval bookkeeping that counts buffer-to-buffer transfers.
    transfer_counters: Option<PortMap<TransferCounter>>,
    parked_arrivals: u64,
    bypassed_flits: u64,
    data_flits_sent: u64,
}

impl DataPathStage {
    pub(crate) fn new(config: &FrConfig) -> Self {
        DataPathStage {
            tables: PortMap::from_fn(|_| {
                InputReservationTable::new(
                    config.horizon,
                    config.data_buffers,
                    config.timing.data_delay,
                )
            }),
            pending: Vec::new(),
            transfer_counters: match config.buffer_alloc {
                crate::BufferAllocPolicy::AtReservation => Some(PortMap::from_fn(|_| {
                    TransferCounter::new(config.data_buffers)
                })),
                crate::BufferAllocPolicy::JustBeforeArrival => None,
            },
            parked_arrivals: 0,
            bypassed_flits: 0,
            data_flits_sent: 0,
        }
    }

    /// Slides every table's window to `now`.
    pub(crate) fn advance_all(&mut self, now: Cycle) {
        for (_, table) in self.tables.iter_mut() {
            table.advance_to(now);
        }
    }

    /// Stages a data flit arriving on `port` this cycle (delivered to
    /// the pools by `accept` after this cycle's departures ran).
    pub(crate) fn queue_arrival(&mut self, port: Port, flit: DataFlit) {
        self.pending.push((port, flit));
    }

    /// Drains the staged arrivals for processing.
    pub(crate) fn take_pending(&mut self) -> Vec<(Port, DataFlit)> {
        std::mem::take(&mut self.pending)
    }

    /// True when no arrival awaits buffering.
    pub(crate) fn pending_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Delivers one staged arrival to its input table, counting parked
    /// and bypassed flits.
    pub(crate) fn accept(&mut self, port: Port, flit: DataFlit, now: Cycle) -> ArrivalOutcome {
        let outcome = self.tables[port].on_data_arrival(flit, now);
        match outcome {
            ArrivalOutcome::Parked(_) => self.parked_arrivals += 1,
            ArrivalOutcome::Bypass { .. } => self.bypassed_flits += 1,
            ArrivalOutcome::Scheduled(..) => {}
        }
        outcome
    }

    /// True if `port`'s read port already has a departure booked at `t`.
    pub(crate) fn departure_booked(&self, port: Port, t: Cycle) -> bool {
        self.tables[port].departure_booked(t)
    }

    /// Records a granted reservation into `port`'s input table.
    pub(crate) fn apply_reservation(
        &mut self,
        port: Port,
        t_a: Cycle,
        t_d: Cycle,
        out_port: Port,
        now: Cycle,
    ) {
        self.tables[port].apply_reservation(t_a, t_d, out_port, now);
    }

    /// Executes the departure booked on `port` for cycle `now`, if any.
    pub(crate) fn take_departure(
        &mut self,
        port: Port,
        now: Cycle,
    ) -> Option<(DataFlit, Port, BufferId)> {
        self.tables[port].take_departure(now)
    }

    /// Books the residency `[t_a, t_d)` under the bind-at-reservation
    /// ablation; a no-op for bypasses (`t_d == t_a`) and under the
    /// paper's deferred-binding policy.
    pub(crate) fn book_transfer(&mut self, port: Port, t_a: Cycle, t_d: Cycle) {
        if let Some(counters) = &mut self.transfer_counters {
            if t_d > t_a {
                counters[port].book(t_a, t_d);
            }
        }
    }

    /// Drops expired transfer-counter intervals.
    pub(crate) fn collect_garbage(&mut self, now: Cycle) {
        if let Some(counters) = &mut self.transfer_counters {
            for (_, c) in counters.iter_mut() {
                c.collect_garbage(now);
            }
        }
    }

    /// True under the bind-at-reservation ablation (which keeps
    /// per-buffer interval state and so never idles).
    pub(crate) fn has_transfer_counters(&self) -> bool {
        self.transfer_counters.is_some()
    }

    /// Buffer transfers incurred so far, as `(transfers, residencies)`;
    /// `None` under the paper's deferred-binding policy.
    pub(crate) fn buffer_transfers(&self) -> Option<(u64, u64)> {
        self.transfer_counters.as_ref().map(|counters| {
            let mut t = 0;
            let mut b = 0;
            for (_, c) in counters.iter() {
                t += c.transfers();
                b += c.booked();
            }
            (t, b)
        })
    }

    /// Counts a data flit forwarded onto an outgoing link.
    pub(crate) fn note_data_sent(&mut self) {
        self.data_flits_sent += 1;
    }

    pub(crate) fn occupied(&self, port: Port) -> usize {
        self.tables[port].occupied()
    }

    pub(crate) fn capacity(&self, port: Port) -> usize {
        self.tables[port].capacity()
    }

    pub(crate) fn is_quiet(&self, port: Port) -> bool {
        self.tables[port].is_quiet()
    }

    pub(crate) fn parked_arrivals(&self) -> u64 {
        self.parked_arrivals
    }

    pub(crate) fn bypassed_flits(&self) -> u64 {
        self.bypassed_flits
    }

    pub(crate) fn data_flits_sent(&self) -> u64 {
        self.data_flits_sent
    }

    /// Total departures booked but not yet executed plus parked flits
    /// across all input tables — the instantaneous bookings-in-flight
    /// gauge (same definition as the metrics counter of that name).
    pub(crate) fn bookings_in_flight(&self) -> u64 {
        Port::ALL
            .iter()
            .map(|&p| (self.tables[p].pending_departures() + self.tables[p].parked()) as u64)
            .sum()
    }

    /// Dumps every input reservation table keyed by port, any staged
    /// (not-yet-buffered) arrivals, and the traversal counters.
    pub(crate) fn snapshot(&self) -> Json {
        use noc_metrics::Snapshot;
        let tables: Vec<Json> = Port::ALL
            .iter()
            .map(|&port| {
                Json::obj(vec![
                    ("port".into(), Json::str(format!("{port:?}"))),
                    ("table".into(), self.tables[port].snapshot()),
                ])
            })
            .collect();
        let pending: Vec<Json> = self
            .pending
            .iter()
            .map(|(port, flit)| Json::str(format!("{port:?} {flit:?}")))
            .collect();
        Json::obj(vec![
            ("tables".into(), Json::Arr(tables)),
            ("pending_arrivals".into(), Json::Arr(pending)),
            (
                "parked_arrivals".into(),
                Json::Num(self.parked_arrivals as f64),
            ),
            (
                "bypassed_flits".into(),
                Json::Num(self.bypassed_flits as f64),
            ),
            (
                "data_flits_sent".into(),
                Json::Num(self.data_flits_sent as f64),
            ),
        ])
    }
}

/// The injection stage: packet staging, the injection reservation
/// table and data flits awaiting their scheduled injection cycle.
#[derive(Clone, Debug)]
pub(crate) struct FrNiStage {
    pending: VecDeque<Packet>,
    /// Control flits of the packet currently being injected.
    staged: VecDeque<ControlFlit>,
    /// Local control VC carrying the current packet.
    current_vc: Option<u8>,
    /// Output reservation table of the NI→router injection channel.
    inject_table: OutputReservationTable,
    /// Data flits scheduled for injection, keyed by injection cycle.
    data_ready: Vec<(Cycle, DataFlit)>,
}

impl FrNiStage {
    pub(crate) fn new(config: &FrConfig) -> Self {
        FrNiStage {
            pending: VecDeque::new(),
            staged: VecDeque::new(),
            current_vc: None,
            inject_table: OutputReservationTable::new(config.horizon, Some(config.data_buffers), 0),
            data_ready: Vec::new(),
        }
    }

    /// Slides the injection table's window to `now`.
    pub(crate) fn advance_table(&mut self, now: Cycle) {
        self.inject_table.advance_to(now);
    }

    /// Queues an injected packet behind the staging area.
    pub(crate) fn push_packet(&mut self, packet: Packet) {
        self.pending.push_back(packet);
    }

    /// True when no control flit of a packet is currently staged.
    pub(crate) fn staged_is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Stages the next pending packet as control flits, each leading up
    /// to `d` data flits; false when nothing is pending.
    pub(crate) fn stage_next_packet(&mut self, d: usize) -> bool {
        let packet = match self.pending.pop_front() {
            Some(p) => p,
            None => return false,
        };
        let total = packet.length_flits;
        let mut flits: Vec<DataFlit> = (0..total)
            .map(|seq| DataFlit {
                packet: packet.id,
                seq,
                length: total,
                dest: packet.dest,
                created_at: packet.created_at,
                crc_ok: true,
            })
            .collect();
        let mut first = true;
        while !flits.is_empty() || first {
            let chunk: Vec<LedFlit> = flits
                .drain(..d.min(flits.len()))
                .map(|flit| LedFlit {
                    arrival: Cycle::ZERO, // set when the injection is booked
                    scheduled: false,
                    flit,
                })
                .collect();
            let is_tail = flits.is_empty();
            self.staged.push_back(ControlFlit {
                vc: 0,
                kind: if first {
                    ControlKind::Head { dest: packet.dest }
                } else {
                    ControlKind::Body
                },
                is_tail,
                led: chunk,
                packet: packet.id,
            });
            first = false;
        }
        true
    }

    /// True if the front staged control flit is a packet head.
    pub(crate) fn staged_front_is_head(&self) -> bool {
        self.staged.front().map(|f| f.is_head()).unwrap_or(false)
    }

    /// The local input VC mid-packet injection is bound to, if any.
    pub(crate) fn current_vc(&self) -> Option<u8> {
        self.current_vc
    }

    /// Binds injection to local control VC `vc` for the current packet.
    pub(crate) fn bind_vc(&mut self, vc: u8) {
        self.current_vc = Some(vc);
    }

    /// Releases the binding after the packet's tail entered the router.
    pub(crate) fn unbind_vc(&mut self) {
        self.current_vc = None;
    }

    /// Books injection slots for the front staged control flit's data
    /// flits, each departing strictly after `now + lead - 1`. Atomic
    /// per control flit: a dry run on a snapshot guarantees failure
    /// books nothing.
    ///
    /// # Panics
    ///
    /// Panics if nothing is staged.
    pub(crate) fn schedule_injections(&mut self, now: Cycle, lead: u64) -> bool {
        // Earliest allowed injection: `now + 1`, or `now + lead` when
        // the control flit must lead its data flits by `lead` cycles.
        // The table searches strictly after the floor we pass it.
        let floor = Cycle::new((now.raw() + lead).saturating_sub(1));
        let front = self.staged.front_mut().expect("caller checked");
        let mut snapshot = self.inject_table.clone();
        let mut slots = Vec::with_capacity(front.led.len());
        let mut remaining = front.led.len() as i64;
        for _ in &front.led {
            match snapshot.find_departure_min(floor, now, remaining, |_| true) {
                Some(t) => {
                    snapshot.reserve(t);
                    slots.push(t);
                    remaining -= 1;
                }
                None => return false,
            }
        }
        for (led, &t_inj) in front.led.iter_mut().zip(&slots) {
            self.inject_table.reserve(t_inj);
            led.arrival = t_inj;
            led.scheduled = false; // to be scheduled by this router next
            self.data_ready.push((t_inj, led.flit));
        }
        true
    }

    /// Pops the front staged control flit.
    ///
    /// # Panics
    ///
    /// Panics if nothing is staged.
    pub(crate) fn pop_staged(&mut self) -> ControlFlit {
        self.staged.pop_front().expect("staged front")
    }

    /// Releases the data flits whose scheduled injection cycle is
    /// `now`.
    ///
    /// # Panics
    ///
    /// Panics if two flits claim the 1-flit/cycle injection channel in
    /// the same cycle.
    pub(crate) fn take_due_injections(&mut self, now: Cycle) -> Vec<DataFlit> {
        let mut released = Vec::new();
        let mut i = 0;
        while i < self.data_ready.len() {
            if self.data_ready[i].0 == now {
                let (_, flit) = self.data_ready.swap_remove(i);
                released.push(flit);
                assert!(
                    released.len() <= 1,
                    "injection channel carried two flits in one cycle"
                );
            } else {
                debug_assert!(self.data_ready[i].0 > now, "missed a scheduled injection");
                i += 1;
            }
        }
        released
    }

    /// Applies an advance credit to the injection channel's table.
    pub(crate) fn inject_credit(&mut self, frees_at: Cycle, now: Cycle) {
        self.inject_table.credit(frees_at, now);
    }

    /// Flits of packets still queued behind the staging area.
    pub(crate) fn pending_flits(&self) -> usize {
        self.pending.iter().map(|p| p.length_flits as usize).sum()
    }

    /// Data flits awaiting their scheduled injection cycle.
    pub(crate) fn data_ready_len(&self) -> usize {
        self.data_ready.len()
    }

    /// True when the NI holds no state that obligates future work.
    pub(crate) fn is_quiet(&self) -> bool {
        self.pending.is_empty() && self.staged.is_empty() && self.data_ready.is_empty()
    }

    /// Dumps the staging area, the injection reservation table and the
    /// data flits awaiting their booked injection cycle (sorted by that
    /// cycle — the internal order is a `swap_remove` artefact).
    pub(crate) fn snapshot(&self) -> Json {
        use noc_metrics::Snapshot;
        let pending: Vec<Json> = self
            .pending
            .iter()
            .map(|p| Json::str(format!("{p:?}")))
            .collect();
        let staged: Vec<Json> = self
            .staged
            .iter()
            .map(|f| Json::str(format!("{f:?}")))
            .collect();
        let mut ready: Vec<(u64, String)> = self
            .data_ready
            .iter()
            .map(|(at, flit)| (at.raw(), format!("{flit:?}")))
            .collect();
        ready.sort_unstable();
        let data_ready: Vec<Json> = ready
            .into_iter()
            .map(|(at, flit)| {
                Json::obj(vec![
                    ("inject_at".into(), Json::Num(at as f64)),
                    ("flit".into(), Json::str(flit)),
                ])
            })
            .collect();
        Json::obj(vec![
            (
                "current_vc".into(),
                match self.current_vc {
                    Some(v) => Json::Num(v as f64),
                    None => Json::Null,
                },
            ),
            ("pending_packets".into(), Json::Arr(pending)),
            ("staged_control".into(), Json::Arr(staged)),
            ("data_ready".into(), Json::Arr(data_ready)),
            ("inject_table".into(), self.inject_table.snapshot()),
        ])
    }
}
