//! # flit-reservation
//!
//! Flit-reservation flow control (Li-Shiuan Peh and William J. Dally,
//! HPCA 2000): control flits traverse a fast (or leading) control network
//! ahead of the wide data flits, reserving buffers and channel bandwidth
//! cycle by cycle. Buffers are held only while actually occupied — zero
//! turnaround — and data flits cross routers without routing or
//! arbitration latency.
//!
//! The crate provides the two reservation tables ([`OutputReservationTable`],
//! [`InputReservationTable`]), the router ([`FrRouter`]) with its control
//! network and network interface, and the configuration presets matching
//! the paper ([`FrConfig::fr6`], [`FrConfig::fr13`]).
//!
//! # Examples
//!
//! ```
//! use flit_reservation::{FrConfig, FrRouter};
//! use noc_engine::Rng;
//! use noc_topology::{Mesh, NodeId};
//!
//! let mesh = Mesh::new(8, 8);
//! let config = FrConfig::fr6(); // storage-matched to the VC8 baseline
//! let router = FrRouter::new(mesh, NodeId::new(27), config, Rng::from_seed(1));
//! assert_eq!(router.config().horizon, 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod input_table;
mod output_table;
mod router;
mod stages;
pub mod transfers;

pub use config::{BufferAllocPolicy, FrConfig, SchedulingPolicy};
pub use input_table::{ArrivalOutcome, InputReservationTable, Reservation};
pub use output_table::OutputReservationTable;
pub use router::{FrRouter, FrStats};
