//! The output reservation table (paper Figure 4a/4b).
//!
//! One table per output channel records, for every cycle within a sliding
//! window from the present to the scheduling horizon:
//!
//! * whether the channel is already reserved ("busy") that cycle, and
//! * how many buffers will be free at the far end of the channel.
//!
//! Scheduling a data flit that arrives at `t_a` finds the earliest
//! departure `t_d > t_a` where the channel is free and a downstream buffer
//! is available *from `t_d + t_p` onwards* (the flit holds the buffer until
//! its own onward departure, which is unknown until the downstream node's
//! credit arrives — so availability must be conservative through the
//! horizon). Reserving marks the channel busy at `t_d` and decrements the
//! free-buffer count for all `t ≥ t_d + t_p`; an advance credit carrying
//! `frees_at` restores the count for all `t ≥ frees_at`.

use noc_engine::Cycle;

/// Sliding-window bookkeeping for one output channel.
///
/// # Examples
///
/// ```
/// use flit_reservation::OutputReservationTable;
/// use noc_engine::Cycle;
///
/// // Horizon 32, 6 downstream buffers, 4-cycle propagation delay.
/// let mut table = OutputReservationTable::new(32, Some(6), 4);
/// let now = Cycle::ZERO;
/// table.advance_to(now);
/// let t_d = table.find_departure(Cycle::new(9), now, |_| true).unwrap();
/// assert_eq!(t_d, Cycle::new(10));
/// table.reserve(t_d);
/// // Cycle 10 is now busy; the next flit arriving at 9 departs at 11.
/// assert_eq!(
///     table.find_departure(Cycle::new(9), now, |_| true),
///     Some(Cycle::new(11))
/// );
/// ```
#[derive(Clone, Debug)]
pub struct OutputReservationTable {
    horizon: u64,
    prop_delay: u64,
    window: usize,
    base: Cycle,
    busy: Vec<bool>,
    free: Vec<i64>,
    /// Free-buffer count for every cycle at or beyond `base + window`.
    tail_free: i64,
    /// Downstream buffer capacity, for invariant checking (`None` =
    /// unbounded, used for the ejection channel whose "far end" is the
    /// reassembly buffer space).
    capacity: Option<i64>,
    /// Credits whose release cycle lies at or beyond the window's far
    /// edge (possible when a synchronization margin pushes the release
    /// past `base + window`); held back and applied by
    /// [`Self::advance_to`] once the window reaches them. Until then the
    /// buffer conservatively counts as occupied.
    pending_credits: Vec<Cycle>,
}

impl OutputReservationTable {
    /// Creates a table with scheduling horizon `horizon`, `capacity`
    /// downstream buffers (`None` for unbounded) and channel propagation
    /// delay `prop_delay`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn new(horizon: u64, capacity: Option<usize>, prop_delay: u64) -> Self {
        assert!(horizon > 0, "scheduling horizon must be positive");
        // The window covers every cycle a reservation can touch:
        // departures up to `now + horizon` plus the propagation to the
        // next node, with one slack slot so strict inequalities stay easy.
        let window = (horizon + prop_delay + 2) as usize;
        let initial = capacity.map(|c| c as i64).unwrap_or(i64::MAX / 2);
        OutputReservationTable {
            horizon,
            prop_delay,
            window,
            base: Cycle::ZERO,
            busy: vec![false; window],
            free: vec![initial; window],
            tail_free: initial,
            capacity: capacity.map(|c| c as i64),
            pending_credits: Vec::new(),
        }
    }

    /// The scheduling horizon in cycles.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The channel propagation delay in cycles.
    pub fn prop_delay(&self) -> u64 {
        self.prop_delay
    }

    /// The cycle the sliding window currently starts at.
    pub fn base(&self) -> Cycle {
        self.base
    }

    /// The window length in cycles (slots tracked ahead of `base`).
    pub fn window(&self) -> usize {
        self.window
    }

    fn slot(&self, t: Cycle) -> usize {
        (t.raw() % self.window as u64) as usize
    }

    fn in_window(&self, t: Cycle) -> bool {
        t >= self.base && t.raw() < self.base.raw() + self.window as u64
    }

    /// Slides the window forward so it starts at `now`. Must be called
    /// once at the start of every cycle (idempotent within a cycle).
    ///
    /// # Panics
    ///
    /// Panics if time moves backwards.
    pub fn advance_to(&mut self, now: Cycle) {
        assert!(now >= self.base, "output table time went backwards");
        if now == self.base {
            // Idempotent repeat within a cycle: no slot recycles and no
            // pending credit can have entered the (unmoved) window.
            return;
        }
        let steps = (now - self.base).min(self.window as u64);
        // Recycle the slots that fell out of the window: they now
        // represent cycles just past the previous far edge and inherit the
        // steady-state (beyond-horizon) buffer count.
        for i in 0..steps {
            let t = self.base + i;
            let s = self.slot(t);
            self.busy[s] = false;
            self.free[s] = self.tail_free;
        }
        self.base = now;
        // Deferred credits whose release cycle the window now reaches.
        if !self.pending_credits.is_empty() {
            let end = self.base + self.window as u64;
            let mut i = 0;
            while i < self.pending_credits.len() {
                if self.pending_credits[i] < end {
                    let from = self.pending_credits.swap_remove(i);
                    self.apply_credit(from);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// `true` if the channel is already reserved for cycle `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside the window.
    pub fn is_busy(&self, t: Cycle) -> bool {
        assert!(self.in_window(t), "busy query outside window");
        self.busy[self.slot(t)]
    }

    /// Free downstream buffers at cycle `t` (clamped to the steady-state
    /// value beyond the window).
    pub fn free_at(&self, t: Cycle) -> i64 {
        if t < self.base {
            panic!("free-buffer query in the past");
        }
        if self.in_window(t) {
            self.free[self.slot(t)]
        } else {
            self.tail_free
        }
    }

    /// Finds the earliest departure time `t_d` for a data flit arriving at
    /// `t_a`, searching `max(t_a, now) + 1 ..= now + horizon`.
    ///
    /// A candidate cycle qualifies when the channel is not busy, a
    /// downstream buffer is free for every cycle from `t_d + t_p` through
    /// the window (and beyond), and `extra_ok(t_d)` holds — the router
    /// passes a closure rejecting cycles where the originating input port
    /// already has a departure booked (single-read-port input buffers,
    /// paper footnote 7).
    pub fn find_departure(
        &self,
        t_a: Cycle,
        now: Cycle,
        extra_ok: impl FnMut(Cycle) -> bool,
    ) -> Option<Cycle> {
        self.find_departure_min(t_a, now, 1, extra_ok)
    }

    /// Like [`Self::find_departure`], but demands `min_free` buffers free
    /// downstream throughout the hold. Used when a control flit leads
    /// several data flits (`d > 1`): booking one of `m` remaining flits
    /// with `min_free = m` guarantees the control flit can always finish
    /// its schedule, so partially-scheduled data flits parked at the next
    /// node can never deadlock the pool (see DESIGN.md).
    pub fn find_departure_min(
        &self,
        t_a: Cycle,
        now: Cycle,
        min_free: i64,
        extra_ok: impl FnMut(Cycle) -> bool,
    ) -> Option<Cycle> {
        self.schedule_search(t_a, now, min_free, false, extra_ok)
    }

    /// Full-control search. With `allow_same_cycle` (and a reservation
    /// being made ahead of the arrival, `t_a > now`), the arrival cycle
    /// itself is a candidate departure: the flit is bypassed directly to
    /// the output port, spending zero cycles in the router — the source of
    /// flit-reservation flow control's low data latency.
    ///
    /// The whole search costs O(window + horizon) instead of the naive
    /// O(window × horizon): a candidate qualifies only when *no* window
    /// slot from its buffer hold onward is short of `min_free` buffers,
    /// so one backwards scan locating the **last deficient slot** (often
    /// O(1) — a saturated table exits on its first probe) answers every
    /// candidate's availability check with a single index comparison.
    pub fn schedule_search(
        &self,
        t_a: Cycle,
        now: Cycle,
        min_free: i64,
        allow_same_cycle: bool,
        mut extra_ok: impl FnMut(Cycle) -> bool,
    ) -> Option<Cycle> {
        if self.tail_free < min_free {
            return None;
        }
        let start = if allow_same_cycle && t_a > now {
            t_a
        } else {
            t_a.max(now) + 1
        };
        let last = now + self.horizon;
        if start > last {
            return None;
        }
        // Earliest window offset any candidate's hold can touch: a
        // departure at `t` holds buffers from `t + prop_delay` on, and
        // `t >= start`. Offsets below it are never queried.
        let floor = ((start + self.prop_delay)
            .raw()
            .saturating_sub(self.base.raw()) as usize)
            .min(self.window);
        // Largest window offset at or above `floor` with fewer than
        // `min_free` buffers free; `floor as isize - 1` when none. The
        // search never reserves, so this is invariant across candidates.
        let mut last_deficient = floor as isize - 1;
        for i in (floor..self.window).rev() {
            let s = self.slot(self.base + i as u64);
            if self.free[s] < min_free {
                last_deficient = i as isize;
                break;
            }
        }
        let mut t = start;
        while t <= last {
            if !self.busy[self.slot(t)] {
                // Buffers are free for the whole hold iff the hold
                // starts strictly past the last deficient slot (the
                // beyond-window tail was vetted up front).
                let from = ((t + self.prop_delay).raw().saturating_sub(self.base.raw()) as usize)
                    .min(self.window);
                if from as isize > last_deficient && extra_ok(t) {
                    return Some(t);
                }
            }
            t = t.next();
        }
        None
    }

    /// Reference implementation of the availability check: a literal scan
    /// of the free-buffer ring, kept to pin the last-deficient-slot
    /// search's equivalence in tests.
    #[cfg(test)]
    fn buffers_from(&self, from: Cycle, min_free: i64) -> bool {
        if self.tail_free < min_free {
            return false;
        }
        let end = self.base + self.window as u64;
        let mut t = from.max(self.base);
        while t < end {
            if self.free[self.slot(t)] < min_free {
                return false;
            }
            t = t.next();
        }
        true
    }

    /// Commits a reservation: the channel is busy at `t_d` and the
    /// downstream buffer is held from `t_d + t_p` until a credit restores
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `t_d` is outside the window, already busy, or no buffer
    /// is available.
    pub fn reserve(&mut self, t_d: Cycle) {
        assert!(self.in_window(t_d), "reservation outside window");
        let s = self.slot(t_d);
        assert!(!self.busy[s], "channel double-booked at {t_d}");
        self.busy[s] = true;
        let from = t_d + self.prop_delay;
        assert!(
            self.in_window(from),
            "buffer hold starts outside window (window too small)"
        );
        let end = self.base + self.window as u64;
        let mut t = from;
        while t < end {
            let s = self.slot(t);
            self.free[s] -= 1;
            assert!(self.free[s] >= 0, "buffer count went negative at {t}");
            t = t.next();
        }
        self.tail_free -= 1;
        assert!(self.tail_free >= 0, "steady-state buffer count negative");
    }

    /// Applies an advance credit: the downstream buffer frees again at
    /// `frees_at` (clamped to `now` if the credit arrives late). A
    /// release cycle at or beyond the window's far edge — reachable when
    /// a synchronization margin extends the hold — is deferred until the
    /// window slides up to it.
    ///
    /// # Panics
    ///
    /// Panics if the credit would raise a count above the configured
    /// capacity.
    pub fn credit(&mut self, frees_at: Cycle, now: Cycle) {
        let from = frees_at.max(now).max(self.base);
        if !self.in_window(from) {
            self.pending_credits.push(from);
            return;
        }
        self.apply_credit(from);
    }

    /// Restores one free buffer from `from` (in or before the window)
    /// through the window's end and the steady-state tail.
    fn apply_credit(&mut self, from: Cycle) {
        let from = from.max(self.base);
        let end = self.base + self.window as u64;
        let mut t = from;
        while t < end {
            let s = self.slot(t);
            self.free[s] += 1;
            if let Some(cap) = self.capacity {
                assert!(self.free[s] <= cap, "credit overflow at {t}");
            }
            t = t.next();
        }
        self.tail_free += 1;
        if let Some(cap) = self.capacity {
            assert!(self.tail_free <= cap, "steady-state credit overflow");
        }
    }
}

impl noc_metrics::Snapshot for OutputReservationTable {
    /// Unrolls the slot ring into time order from `base`: `busy` renders
    /// as one character per window slot (`X` reserved, `.` free) — the
    /// ASCII timeline `frfc-inspect` prints — and `free` as the
    /// per-slot free-buffer counts. Pending credits are sorted (their
    /// internal order is a `swap_remove` artefact, not state).
    fn snapshot(&self) -> noc_metrics::Json {
        use noc_metrics::Json;
        let mut busy = String::with_capacity(self.window);
        let mut free = Vec::with_capacity(self.window);
        for i in 0..self.window {
            let s = self.slot(self.base + i as u64);
            busy.push(if self.busy[s] { 'X' } else { '.' });
            free.push(Json::Num(self.free[s] as f64));
        }
        let mut pending: Vec<u64> = self.pending_credits.iter().map(|c| c.raw()).collect();
        pending.sort_unstable();
        Json::obj(vec![
            ("base".into(), Json::Num(self.base.raw() as f64)),
            ("horizon".into(), Json::Num(self.horizon as f64)),
            ("prop_delay".into(), Json::Num(self.prop_delay as f64)),
            (
                "capacity".into(),
                match self.capacity {
                    Some(c) => Json::Num(c as f64),
                    None => Json::Null,
                },
            ),
            ("tail_free".into(), Json::Num(self.tail_free as f64)),
            ("busy".into(), Json::str(busy)),
            ("free".into(), Json::Arr(free)),
            (
                "pending_credits".into(),
                Json::Arr(pending.into_iter().map(|c| Json::Num(c as f64)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> OutputReservationTable {
        OutputReservationTable::new(32, Some(6), 4)
    }

    #[test]
    fn credit_beyond_window_defers_until_window_reaches_it() {
        let mut t = table();
        let now = Cycle::ZERO;
        t.advance_to(now);
        // Drain the pool: 6 reservations consume every downstream buffer.
        for i in 1..=6u64 {
            let t_d = t
                .find_departure(Cycle::ZERO, now, |_| true)
                .expect("buffer available");
            assert_eq!(t_d, Cycle::new(i));
            t.reserve(t_d);
        }
        assert_eq!(t.free_at(Cycle::new(20)), 0);
        assert!(t.find_departure(Cycle::ZERO, now, |_| true).is_none());
        // A release cycle past the window's far edge (window = 32+4+2)
        // must not apply yet — the buffer stays conservatively held.
        let far = Cycle::new(60);
        t.credit(far, now);
        assert_eq!(t.free_at(Cycle::new(20)), 0);
        assert!(t.find_departure(Cycle::ZERO, now, |_| true).is_none());
        // Once the window slides up to contain it, the credit lands.
        let later = Cycle::new(30);
        t.advance_to(later);
        assert_eq!(t.free_at(far), 1);
        assert_eq!(
            t.find_departure(Cycle::new(55), later, |_| true),
            Some(Cycle::new(56))
        );
    }

    #[test]
    fn schedules_earliest_free_cycle() {
        let mut t = table();
        let now = Cycle::ZERO;
        t.advance_to(now);
        // Arrival in the past of `now` still departs after `now`.
        assert_eq!(
            t.find_departure(Cycle::ZERO, now, |_| true),
            Some(Cycle::new(1))
        );
        t.reserve(Cycle::new(1));
        assert_eq!(
            t.find_departure(Cycle::ZERO, now, |_| true),
            Some(Cycle::new(2))
        );
    }

    #[test]
    fn paper_figure4_example() {
        // Figure 4: flit arrives at cycle 9; channel busy at 10; no
        // buffers at 11; departs at 12.
        let mut t = OutputReservationTable::new(32, Some(2), 0);
        t.advance_to(Cycle::ZERO);
        // Make cycle 10 busy.
        t.reserve(Cycle::new(10));
        // Exhaust buffers at exactly cycle 11 by reserving departures at
        // 11 with prop 0... instead simulate "no free buffers during 11":
        // hold both buffers from 11, then credit one back from 12.
        t.reserve(Cycle::new(11));
        t.credit(Cycle::new(12), Cycle::ZERO);
        assert_eq!(
            t.find_departure(Cycle::new(9), Cycle::ZERO, |_| true),
            Some(Cycle::new(12))
        );
    }

    #[test]
    fn respects_extra_constraint() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        // Input port conflict at cycle 1 and 2 pushes the departure to 3.
        let got = t.find_departure(Cycle::ZERO, Cycle::ZERO, |c| c.raw() > 2);
        assert_eq!(got, Some(Cycle::new(3)));
    }

    #[test]
    fn horizon_bounds_search() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        for c in 1..=32u64 {
            t.reserve(Cycle::new(c));
            // The downstream flit departs one cycle after it lands, so the
            // buffer frees again and availability never blocks.
            t.credit(Cycle::new(c + 5), Cycle::ZERO);
        }
        // Every cycle in the horizon is busy: no reservation possible.
        assert_eq!(t.find_departure(Cycle::ZERO, Cycle::ZERO, |_| true), None);
        // Advancing opens the next cycle.
        t.advance_to(Cycle::new(1));
        assert_eq!(
            t.find_departure(Cycle::ZERO, Cycle::new(1), |_| true),
            Some(Cycle::new(33))
        );
    }

    #[test]
    fn buffer_exhaustion_blocks_scheduling() {
        let mut t = OutputReservationTable::new(8, Some(2), 1);
        t.advance_to(Cycle::ZERO);
        t.reserve(Cycle::new(1));
        t.reserve(Cycle::new(2));
        // Both downstream buffers held from cycles 2 and 3 onward.
        assert_eq!(t.find_departure(Cycle::ZERO, Cycle::ZERO, |_| true), None);
        // A credit that frees one buffer at cycle 5 lets a flit depart at
        // 5 - prop = 4.
        t.credit(Cycle::new(5), Cycle::ZERO);
        assert_eq!(
            t.find_departure(Cycle::ZERO, Cycle::ZERO, |_| true),
            Some(Cycle::new(4))
        );
    }

    #[test]
    fn advance_recycles_slots() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        t.reserve(Cycle::new(3));
        assert!(t.is_busy(Cycle::new(3)));
        // Slide far enough that cycle 3's slot is reused.
        let far = Cycle::new(3 + 38);
        t.advance_to(far);
        assert!(!t.is_busy(far.max(Cycle::new(41))));
        // The recycled slot inherited the steady-state count (6 - 1 held).
        assert_eq!(t.free_at(far), 5);
    }

    #[test]
    fn credit_restores_counts() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        t.reserve(Cycle::new(2));
        assert_eq!(t.free_at(Cycle::new(6)), 5);
        assert_eq!(t.free_at(Cycle::new(5)), 6, "hold starts at t_d + t_p");
        t.credit(Cycle::new(9), Cycle::ZERO);
        assert_eq!(t.free_at(Cycle::new(8)), 5);
        assert_eq!(t.free_at(Cycle::new(9)), 6);
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn double_reserve_panics() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        t.reserve(Cycle::new(2));
        t.reserve(Cycle::new(2));
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn spurious_credit_panics() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        t.credit(Cycle::new(1), Cycle::ZERO);
    }

    #[test]
    fn unbounded_capacity_for_ejection() {
        let mut t = OutputReservationTable::new(32, None, 0);
        t.advance_to(Cycle::ZERO);
        for c in 1..=30u64 {
            t.reserve(Cycle::new(c));
        }
        // Buffers never run out; only channel-busy limits.
        assert_eq!(
            t.find_departure(Cycle::ZERO, Cycle::ZERO, |_| true),
            Some(Cycle::new(31))
        );
    }

    /// A literal re-implementation of the search loop on top of the
    /// reference `buffers_from` scan; the production search must agree
    /// with it on every table state.
    fn reference_search(
        t: &OutputReservationTable,
        t_a: Cycle,
        now: Cycle,
        min_free: i64,
        allow_same_cycle: bool,
    ) -> Option<Cycle> {
        if t.tail_free < min_free {
            return None;
        }
        let start = if allow_same_cycle && t_a > now {
            t_a
        } else {
            t_a.max(now) + 1
        };
        let last = now + t.horizon;
        let mut c = start;
        while c <= last {
            if !t.busy[t.slot(c)] && t.buffers_from(c + t.prop_delay, min_free) {
                return Some(c);
            }
            c = c.next();
        }
        None
    }

    #[test]
    fn fast_search_matches_reference_scan() {
        // A deterministic mix of reservations, credits and window slides;
        // at every search the last-deficient-slot fast path must return
        // exactly what the literal ring scan returns.
        let mut t = OutputReservationTable::new(16, Some(3), 2);
        let mut now = Cycle::ZERO;
        t.advance_to(now);
        // Buffer holds outstanding, by hold-start cycle, so credits never
        // overflow a slot the matching reservation did not decrement.
        let mut holds: Vec<Cycle> = Vec::new();
        let mut lcg: u64 = 0x243F_6A88_85A3_08D3;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut searches = 0u32;
        for step in 0..600u64 {
            let r = next();
            match r % 4 {
                0 => {
                    let min_free = (r / 7 % 3) as i64 + 1;
                    let t_a = now + r / 11 % 8;
                    let allow = r / 5 % 2 == 0;
                    let want = reference_search(&t, t_a, now, min_free, allow);
                    let got = t.schedule_search(t_a, now, min_free, allow, |_| true);
                    assert_eq!(got, want, "step {step}: search diverged");
                    searches += 1;
                    if let Some(t_d) = got {
                        t.reserve(t_d);
                        holds.push(t_d + t.prop_delay);
                    }
                }
                1 => {
                    if let Some(h) = holds.pop() {
                        t.credit(h + r % 4, now);
                    }
                }
                2 => {
                    now += r % 3;
                    t.advance_to(now);
                }
                _ => {
                    let min_free = (r / 7 % 3) as i64 + 1;
                    let t_a = now + r / 11 % 12;
                    let want = reference_search(&t, t_a, now, min_free, false);
                    let got = t.schedule_search(t_a, now, min_free, false, |_| true);
                    assert_eq!(got, want, "step {step}: probe diverged");
                    searches += 1;
                }
            }
        }
        assert!(searches > 100, "the op mix must actually exercise searches");
    }

    #[test]
    fn late_credit_clamps_to_now() {
        let mut t = table();
        t.advance_to(Cycle::ZERO);
        t.reserve(Cycle::new(1));
        t.advance_to(Cycle::new(10));
        // Credit whose frees_at is already past: applies from now.
        t.credit(Cycle::new(5), Cycle::new(10));
        assert_eq!(t.free_at(Cycle::new(10)), 6);
    }
}
