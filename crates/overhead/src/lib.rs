//! # noc-overhead
//!
//! Analytic storage and bandwidth overhead models for virtual-channel and
//! flit-reservation flow control — the paper's Table 1 and Table 2. These
//! models justify the experimental pairings: FR6 is storage-matched to
//! VC8 and FR13 to VC16, and flit-reservation flow control pays about 2%
//! extra bandwidth (the `log2 s` arrival-time stamp on 256-bit flits).
//!
//! # Examples
//!
//! ```
//! use noc_overhead::{FrStorage, Params, VcStorage};
//!
//! let p = Params::paper();
//! let vc8 = VcStorage::compute(&p, 2, 8);
//! let fr6 = FrStorage::compute(&p, 2, 6, 6);
//! assert_eq!(vc8.total_bits(), 10_452);
//! assert_eq!(fr6.total_bits(), 10_762);
//! // Approximately storage-matched: within 3%.
//! let ratio = fr6.total_bits() as f64 / vc8.total_bits() as f64;
//! assert!((ratio - 1.0).abs() < 0.03);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Ceiling of `log2(n)` — the number of bits needed to index `n` items.
///
/// # Examples
///
/// ```
/// assert_eq!(noc_overhead::ceil_log2(6), 3);
/// assert_eq!(noc_overhead::ceil_log2(8), 3);
/// assert_eq!(noc_overhead::ceil_log2(13), 4);
/// assert_eq!(noc_overhead::ceil_log2(1), 0);
/// ```
///
/// # Panics
///
/// Panics if `n` is zero.
pub const fn ceil_log2(n: u64) -> u64 {
    assert!(n > 0, "log2 of zero");
    (u64::BITS - (n - 1).leading_zeros()) as u64
}

/// Technology/protocol parameters shared by both models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Data flit width in bits (`f`).
    pub flit_bits: u64,
    /// Type-field width in bits (`t`): head/body/tail marker.
    pub type_bits: u64,
    /// Destination field width in bits (`n`) for an 8×8 mesh.
    pub dest_bits: u64,
    /// Scheduling horizon in cycles (`s`).
    pub horizon: u64,
    /// Data flits led per control flit (`d`).
    pub flits_per_control: u64,
    /// Router ports (5 on a 2-D mesh with a local port).
    pub ports: u64,
}

impl Params {
    /// The paper's example network: f = 256, t = 2, 64-node mesh (n = 6),
    /// s = 32, d = 1, 5 ports.
    pub fn paper() -> Self {
        Params {
            flit_bits: 256,
            type_bits: 2,
            dest_bits: 6,
            horizon: 32,
            flits_per_control: 1,
            ports: 5,
        }
    }
}

/// Per-structure storage breakdown for virtual-channel flow control
/// (Table 1, left half).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcStorage {
    /// Virtual channels per physical channel (`v_d`).
    pub num_vcs: u64,
    /// Data buffers per input channel (`b_d`).
    pub data_buffers: u64,
    /// `(f + log2 v_d + t) × b_d × ports` — flits are padded with their VC
    /// id and type field.
    pub data_buffer_bits: u64,
    /// `2 × log2 b_d × v_d × ports` — head/tail pointer per VC queue.
    pub queue_pointer_bits: u64,
    /// `(1 + log2 b_d) × 4 × v_d` — channel status bit plus next-hop free
    /// count per output VC.
    pub output_table_bits: u64,
}

impl VcStorage {
    /// Computes the breakdown for `v_d` VCs sharing `b_d` buffers.
    pub fn compute(p: &Params, num_vcs: u64, data_buffers: u64) -> Self {
        let data_buffer_bits =
            (p.flit_bits + ceil_log2(num_vcs) + p.type_bits) * data_buffers * p.ports;
        let queue_pointer_bits = 2 * ceil_log2(data_buffers) * num_vcs * p.ports;
        let output_table_bits = (1 + ceil_log2(data_buffers)) * 4 * num_vcs;
        VcStorage {
            num_vcs,
            data_buffers,
            data_buffer_bits,
            queue_pointer_bits,
            output_table_bits,
        }
    }

    /// Total bits per node.
    pub fn total_bits(&self) -> u64 {
        self.data_buffer_bits + self.queue_pointer_bits + self.output_table_bits
    }

    /// Total storage expressed in data-flit equivalents per input channel.
    pub fn flits_per_input(&self, p: &Params) -> f64 {
        self.total_bits() as f64 / (p.ports * p.flit_bits) as f64
    }
}

/// Per-structure storage breakdown for flit-reservation flow control
/// (Table 1, right half).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrStorage {
    /// Control virtual channels (`v_c`).
    pub control_vcs: u64,
    /// Data buffers per input channel (`b_d`).
    pub data_buffers: u64,
    /// Control buffers per input channel (`b_c`).
    pub control_buffers: u64,
    /// `f × b_d × ports` — data flits carry payload only.
    pub data_buffer_bits: u64,
    /// `(log2 v_c + t + d × log2 s) × b_c × ports`.
    pub control_buffer_bits: u64,
    /// `2 × log2 b_c × v_c × ports`.
    pub queue_pointer_bits: u64,
    /// `(1 + log2 b_d) × s × 4` — VC flow control's status bits and
    /// next-hop counts, archived over the scheduling horizon.
    pub output_table_bits: u64,
    /// `[(1 + log2 s + 2 + 2 × log2 b_d) × s + b_c] × ports` — the
    /// arrival/departure/output-channel/buffer rows of Figure 4(c) plus
    /// the buffer occupancy bits.
    pub input_table_bits: u64,
}

impl FrStorage {
    /// Computes the breakdown.
    pub fn compute(p: &Params, control_vcs: u64, data_buffers: u64, control_buffers: u64) -> Self {
        let data_buffer_bits = p.flit_bits * data_buffers * p.ports;
        let control_buffer_bits =
            (ceil_log2(control_vcs) + p.type_bits + p.flits_per_control * ceil_log2(p.horizon))
                * control_buffers
                * p.ports;
        let queue_pointer_bits = 2 * ceil_log2(control_buffers) * control_vcs * p.ports;
        let output_table_bits = (1 + ceil_log2(data_buffers)) * p.horizon * 4;
        let input_table_bits = ((1 + ceil_log2(p.horizon) + 2 + 2 * ceil_log2(data_buffers))
            * p.horizon
            + control_buffers)
            * p.ports;
        FrStorage {
            control_vcs,
            data_buffers,
            control_buffers,
            data_buffer_bits,
            control_buffer_bits,
            queue_pointer_bits,
            output_table_bits,
            input_table_bits,
        }
    }

    /// Total bits per node.
    pub fn total_bits(&self) -> u64 {
        self.data_buffer_bits
            + self.control_buffer_bits
            + self.queue_pointer_bits
            + self.output_table_bits
            + self.input_table_bits
    }

    /// Total storage expressed in data-flit equivalents per input channel.
    pub fn flits_per_input(&self, p: &Params) -> f64 {
        self.total_bits() as f64 / (p.ports * p.flit_bits) as f64
    }
}

/// Bandwidth overhead per data flit, in bits (Table 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bandwidth {
    /// Amortised destination-field cost: `n / L`.
    pub destination: f64,
    /// VC-identifier cost per data flit.
    pub vcid: f64,
    /// Arrival-time stamp cost per data flit (FR only).
    pub arrival_times: f64,
}

impl Bandwidth {
    /// Virtual-channel flow control: every data flit carries `log2 v_d`
    /// bits of VC id; the destination is amortised over the packet.
    pub fn virtual_channel(p: &Params, num_vcs: u64, packet_length: u64) -> Self {
        Bandwidth {
            destination: p.dest_bits as f64 / packet_length as f64,
            vcid: ceil_log2(num_vcs) as f64,
            arrival_times: 0.0,
        }
    }

    /// Flit-reservation flow control: only control flits carry a VC id
    /// (`1 + (L-1)/d` of them per packet), and each data flit costs one
    /// `log2 s` arrival-time stamp.
    pub fn flit_reservation(p: &Params, control_vcs: u64, packet_length: u64) -> Self {
        let control_flits = 1.0 + (packet_length as f64 - 1.0) / p.flits_per_control as f64;
        Bandwidth {
            destination: p.dest_bits as f64 / packet_length as f64,
            vcid: ceil_log2(control_vcs) as f64 * control_flits / packet_length as f64,
            arrival_times: ceil_log2(p.horizon) as f64,
        }
    }

    /// Total overhead bits per data flit.
    pub fn total(&self) -> f64 {
        self.destination + self.vcid + self.arrival_times
    }

    /// Overhead as a fraction of the data flit payload.
    pub fn fraction_of_flit(&self, p: &Params) -> f64 {
        self.total() / p.flit_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(6), 3);
        assert_eq!(ceil_log2(12), 4);
        assert_eq!(ceil_log2(13), 4);
        assert_eq!(ceil_log2(32), 5);
        assert_eq!(ceil_log2(256), 8);
    }

    /// Table 1, VC columns: every cell matches the paper exactly.
    #[test]
    fn table1_vc_columns() {
        let p = Params::paper();
        let vc8 = VcStorage::compute(&p, 2, 8);
        assert_eq!(vc8.data_buffer_bits, 10_360);
        assert_eq!(vc8.queue_pointer_bits, 60);
        assert_eq!(vc8.output_table_bits, 32);
        assert_eq!(vc8.total_bits(), 10_452);
        assert!((vc8.flits_per_input(&p) - 8.17).abs() < 0.01);

        let vc16 = VcStorage::compute(&p, 4, 16);
        assert_eq!(vc16.data_buffer_bits, 20_800);
        assert_eq!(vc16.queue_pointer_bits, 160);
        assert_eq!(vc16.output_table_bits, 80);
        assert_eq!(vc16.total_bits(), 21_040);
        assert!((vc16.flits_per_input(&p) - 16.44).abs() < 0.01);

        let vc32 = VcStorage::compute(&p, 8, 32);
        assert_eq!(vc32.data_buffer_bits, 41_760);
        assert_eq!(vc32.queue_pointer_bits, 400);
        assert_eq!(vc32.output_table_bits, 192);
        assert_eq!(vc32.total_bits(), 42_352);
        assert!((vc32.flits_per_input(&p) - 33.09).abs() < 0.01);
    }

    /// Table 1, FR6 column: every cell matches the paper exactly.
    #[test]
    fn table1_fr6_column() {
        let p = Params::paper();
        let fr6 = FrStorage::compute(&p, 2, 6, 6);
        assert_eq!(fr6.data_buffer_bits, 7_680);
        assert_eq!(fr6.control_buffer_bits, 240);
        assert_eq!(fr6.queue_pointer_bits, 60);
        assert_eq!(fr6.output_table_bits, 512);
        assert_eq!(fr6.input_table_bits, 2_270);
        assert_eq!(fr6.total_bits(), 10_762);
        assert!((fr6.flits_per_input(&p) - 8.40).abs() < 0.01);
    }

    /// Table 1, FR13 column. The paper prints 1,980 bits for the input
    /// reservation table, but its own formula
    /// `[(1 + log2 s + 2 + 2 log2 b_d) × s + b_c] × 5` with b_d = 13
    /// (log2 = 4 bits) and b_c = 12 gives `[(1+5+2+8)×32 + 12] × 5 =
    /// 2,620`; the paper's totals (19,960 bits, 15.59 flits) embed the
    /// inconsistent 1,980, while the formula sums to 20,600 bits (16.09
    /// flits). We assert the formula's value and record the discrepancy
    /// in EXPERIMENTS.md.
    #[test]
    fn table1_fr13_column() {
        let p = Params::paper();
        let fr13 = FrStorage::compute(&p, 4, 13, 12);
        assert_eq!(fr13.data_buffer_bits, 16_640);
        assert_eq!(fr13.control_buffer_bits, 540);
        assert_eq!(fr13.queue_pointer_bits, 160);
        assert_eq!(fr13.output_table_bits, 640);
        assert_eq!(fr13.input_table_bits, 2_620); // paper prints 1,980
        assert_eq!(fr13.total_bits(), 20_600); // paper sums to 19,960
        assert!((fr13.flits_per_input(&p) - 16.09).abs() < 0.01);
        // Either way FR13 is storage-matched to VC16 within ~12%.
        let vc16 = VcStorage::compute(&p, 4, 16);
        let ratio = fr13.total_bits() as f64 / vc16.total_bits() as f64;
        assert!(ratio > 0.85 && ratio < 1.0, "ratio {ratio}");
    }

    /// Table 2 with the paper's experimental parameters: the FR overhead
    /// exceeds VC by exactly log2 s = 5 bits ≈ 2% of a 256-bit flit.
    #[test]
    fn table2_bandwidth_overhead() {
        let p = Params::paper();
        for (v, l) in [(2u64, 5u64), (4, 5), (2, 21), (4, 21)] {
            let vc = Bandwidth::virtual_channel(&p, v, l);
            let fr = Bandwidth::flit_reservation(&p, v, l);
            // v_c = v_d and d = 1: VCID terms are equal.
            assert!((vc.vcid - fr.vcid).abs() < 1e-12);
            assert!((fr.total() - vc.total() - 5.0).abs() < 1e-12);
        }
        let fr = Bandwidth::flit_reservation(&p, 2, 5);
        assert!((fr.arrival_times - 5.0).abs() < 1e-12);
        assert!(fr.fraction_of_flit(&p) < 0.05);
        // log2 s = 5 of 256 bits ≈ 2%.
        assert!((5.0_f64 / 256.0 - 0.0195).abs() < 0.001);
    }

    /// Wider control flits (d = 4) amortise the VCID better — the
    /// Section 5 "single wide control flit" discussion.
    #[test]
    fn wide_control_flits_cut_vcid_overhead() {
        let mut p = Params::paper();
        let narrow = Bandwidth::flit_reservation(&p, 4, 21);
        p.flits_per_control = 4;
        let wide = Bandwidth::flit_reservation(&p, 4, 21);
        assert!(wide.vcid < narrow.vcid);
        assert_eq!(wide.arrival_times, narrow.arrival_times);
    }

    #[test]
    fn storage_matching_pairs() {
        let p = Params::paper();
        let pairs = [
            (
                VcStorage::compute(&p, 2, 8).total_bits(),
                FrStorage::compute(&p, 2, 6, 6).total_bits(),
            ),
            (
                VcStorage::compute(&p, 4, 16).total_bits(),
                FrStorage::compute(&p, 4, 13, 12).total_bits(),
            ),
        ];
        for (vc, fr) in pairs {
            let ratio = fr as f64 / vc as f64;
            assert!((ratio - 1.0).abs() < 0.15, "storage mismatch: {vc} vs {fr}");
        }
    }

    #[test]
    #[should_panic(expected = "log2 of zero")]
    fn ceil_log2_zero_panics() {
        ceil_log2(0);
    }
}
