//! # noc-traffic
//!
//! Workload substrate for the flit-reservation flow-control reproduction:
//! spatial traffic patterns, temporal injection processes, packet
//! descriptors and capacity-normalised load specification.
//!
//! The paper's workload is [`Uniform`] random traffic from
//! [`ConstantRate`] sources at a configured fraction of network capacity;
//! the other patterns are provided for stress tests and extensions.
//!
//! # Examples
//!
//! ```
//! use noc_engine::{Cycle, Rng};
//! use noc_topology::Mesh;
//! use noc_traffic::{LoadSpec, TrafficGenerator};
//!
//! let mesh = Mesh::new(8, 8);
//! let load = LoadSpec::fraction_of_capacity(0.5, 5);
//! let mut gen = TrafficGenerator::uniform(mesh, load, Rng::from_seed(7));
//! let first_cycle = gen.tick(Cycle::ZERO);
//! assert!(first_cycle.len() <= 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod burst;
mod generator;
mod injection;
mod packet;
mod pattern;

pub use burst::OnOff;
pub use generator::{InjectionKind, LengthDistribution, LoadSpec, TrafficGenerator};
pub use injection::{Bernoulli, ConstantRate, InjectionProcess};
pub use packet::{Packet, PacketId};
pub use pattern::{
    BitComplement, Hotspot, Permutation, Tornado, TrafficPattern, Transpose, Uniform,
};
