//! Per-node traffic generation and load normalisation.
//!
//! The paper expresses offered traffic as a *percentage of the capacity of
//! the network*. [`LoadSpec`] converts that fraction into a per-node
//! packet rate given the mesh capacity and packet length;
//! [`TrafficGenerator`] owns one injection process and RNG stream per node
//! and produces [`Packet`]s cycle by cycle.

use crate::{ConstantRate, InjectionProcess, OnOff, Packet, PacketId, TrafficPattern, Uniform};
use noc_engine::{Cycle, Rng};
use noc_topology::{Mesh, NodeId};

/// Kind of temporal injection process to instantiate per node.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum InjectionKind {
    /// Deterministic constant-rate sources with random phase (the paper's
    /// "constant rate source").
    #[default]
    ConstantRate,
    /// Memoryless Bernoulli sources.
    Bernoulli,
    /// Bursty two-state on/off sources delivering the configured mean
    /// rate in bursts (extension; see [`OnOff`]).
    OnOff {
        /// Injection rate while bursting, in packets/cycle.
        peak_rate: f64,
        /// Mean burst length in cycles.
        mean_on: f64,
    },
}

/// Distribution of packet lengths (in flits).
///
/// The paper uses fixed 5- or 21-flit packets; the bimodal mix models the
/// classic short-request / long-reply traffic of a cache-coherent system.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LengthDistribution {
    /// Every packet has the same length.
    Fixed(u32),
    /// Packets are `short` flits with probability `short_fraction`, else
    /// `long` flits.
    Bimodal {
        /// Short (e.g. request) packet length.
        short: u32,
        /// Long (e.g. reply) packet length.
        long: u32,
        /// Probability of a short packet.
        short_fraction: f64,
    },
}

impl LengthDistribution {
    /// Mean packet length in flits.
    pub fn mean(&self) -> f64 {
        match *self {
            LengthDistribution::Fixed(l) => l as f64,
            LengthDistribution::Bimodal {
                short,
                long,
                short_fraction,
            } => short as f64 * short_fraction + long as f64 * (1.0 - short_fraction),
        }
    }

    /// Draws one packet length.
    pub fn sample(&self, rng: &mut Rng) -> u32 {
        match *self {
            LengthDistribution::Fixed(l) => l,
            LengthDistribution::Bimodal {
                short,
                long,
                short_fraction,
            } => {
                if rng.chance(short_fraction) {
                    short
                } else {
                    long
                }
            }
        }
    }

    /// Validates the distribution.
    ///
    /// # Panics
    ///
    /// Panics on zero lengths or an out-of-range mixing probability.
    pub fn validate(&self) {
        match *self {
            LengthDistribution::Fixed(l) => assert!(l > 0, "packets need at least one flit"),
            LengthDistribution::Bimodal {
                short,
                long,
                short_fraction,
            } => {
                assert!(short > 0 && long > 0, "packets need at least one flit");
                assert!(
                    (0.0..=1.0).contains(&short_fraction),
                    "mix probability must be within [0, 1]"
                );
            }
        }
    }
}

/// An offered load expressed as a fraction of network capacity.
///
/// # Examples
///
/// ```
/// use noc_topology::Mesh;
/// use noc_traffic::LoadSpec;
///
/// let mesh = Mesh::new(8, 8);
/// let load = LoadSpec::fraction_of_capacity(0.5, 5);
/// // 0.5 * 0.5 flits/node/cycle / 5 flits/packet:
/// assert!((load.packets_per_node_cycle(mesh) - 0.05).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadSpec {
    fraction: f64,
    lengths: LengthDistribution,
}

impl LoadSpec {
    /// Offered traffic at `fraction` of capacity with `packet_length`-flit
    /// packets.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not positive or `packet_length` is zero.
    pub fn fraction_of_capacity(fraction: f64, packet_length: u32) -> Self {
        LoadSpec::with_lengths(fraction, LengthDistribution::Fixed(packet_length))
    }

    /// Offered traffic at `fraction` of capacity with a packet-length
    /// distribution (extension beyond the paper's fixed lengths).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not positive or the distribution is
    /// invalid.
    pub fn with_lengths(fraction: f64, lengths: LengthDistribution) -> Self {
        assert!(fraction > 0.0, "load fraction must be positive");
        lengths.validate();
        LoadSpec { fraction, lengths }
    }

    /// The capacity fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Packet length in flits (the mean, rounded, for mixed lengths).
    pub fn packet_length(&self) -> u32 {
        self.lengths.mean().round() as u32
    }

    /// The packet-length distribution.
    pub fn lengths(&self) -> LengthDistribution {
        self.lengths
    }

    /// Offered flit rate per node per cycle on `mesh`.
    pub fn flits_per_node_cycle(&self, mesh: Mesh) -> f64 {
        self.fraction * mesh.capacity_flits_per_node_cycle()
    }

    /// Offered packet rate per node per cycle on `mesh`.
    pub fn packets_per_node_cycle(&self, mesh: Mesh) -> f64 {
        self.flits_per_node_cycle(mesh) / self.lengths.mean()
    }
}

/// Generates the offered traffic for every node of a mesh.
///
/// # Examples
///
/// ```
/// use noc_engine::{Cycle, Rng};
/// use noc_topology::Mesh;
/// use noc_traffic::{InjectionKind, LoadSpec, TrafficGenerator, Uniform};
///
/// let mesh = Mesh::new(8, 8);
/// let load = LoadSpec::fraction_of_capacity(0.4, 5);
/// let mut generator = TrafficGenerator::new(
///     mesh, load, Box::new(Uniform), InjectionKind::ConstantRate, Rng::from_seed(1));
/// let packets = generator.tick(Cycle::ZERO);
/// for p in &packets {
///     assert_ne!(p.src, p.dest);
/// }
/// ```
pub struct TrafficGenerator {
    mesh: Mesh,
    load: LoadSpec,
    pattern: Box<dyn TrafficPattern>,
    sources: Vec<SourceState>,
    next_id: u64,
}

struct SourceState {
    process: Box<dyn InjectionProcess>,
    rng: Rng,
}

impl TrafficGenerator {
    /// Creates a generator with one injection process per node.
    pub fn new(
        mesh: Mesh,
        load: LoadSpec,
        pattern: Box<dyn TrafficPattern>,
        kind: InjectionKind,
        rng: Rng,
    ) -> Self {
        let rate = load.packets_per_node_cycle(mesh);
        let sources = (0..mesh.node_count())
            .map(|i| {
                let mut node_rng = rng.fork(i as u64);
                let process: Box<dyn InjectionProcess> = match kind {
                    InjectionKind::ConstantRate => {
                        Box::new(ConstantRate::with_random_phase(rate, &mut node_rng))
                    }
                    InjectionKind::Bernoulli => Box::new(crate::Bernoulli::new(rate)),
                    InjectionKind::OnOff { peak_rate, mean_on } => {
                        Box::new(OnOff::with_mean_rate(rate, peak_rate, mean_on))
                    }
                };
                SourceState {
                    process,
                    rng: node_rng,
                }
            })
            .collect();
        TrafficGenerator {
            mesh,
            load,
            pattern,
            sources,
            next_id: 0,
        }
    }

    /// Convenience constructor for the paper's workload: uniform random
    /// traffic from constant-rate sources.
    pub fn uniform(mesh: Mesh, load: LoadSpec, rng: Rng) -> Self {
        TrafficGenerator::new(
            mesh,
            load,
            Box::new(Uniform),
            InjectionKind::ConstantRate,
            rng,
        )
    }

    /// The configured load.
    pub fn load(&self) -> LoadSpec {
        self.load
    }

    /// The mesh being driven.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Number of packets created so far.
    pub fn created(&self) -> u64 {
        self.next_id
    }

    /// Produces the packets created network-wide during cycle `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<Packet> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// Appends the packets created network-wide during cycle `now` to
    /// `out`, reusing the caller's buffer. The allocation-free form of
    /// [`Self::tick`] used by the network's hot loop: at steady state a
    /// retained scratch `Vec` reaches its high-water capacity once and
    /// never allocates again.
    pub fn tick_into(&mut self, now: Cycle, out: &mut Vec<Packet>) {
        for (i, src) in self.sources.iter_mut().enumerate() {
            let n = src.process.arrivals(&mut src.rng);
            for _ in 0..n {
                let src_node = NodeId::new(i as u16);
                let dest = self.pattern.destination(self.mesh, src_node, &mut src.rng);
                let length_flits = self.load.lengths().sample(&mut src.rng);
                out.push(Packet {
                    id: PacketId::new(self.next_id),
                    src: src_node,
                    dest,
                    length_flits,
                    created_at: now,
                });
                self.next_id += 1;
            }
        }
    }
}

impl std::fmt::Debug for TrafficGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficGenerator")
            .field("mesh", &self.mesh)
            .field("load", &self.load)
            .field("pattern", &self.pattern.name())
            .field("created", &self.next_id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn load_spec_normalisation() {
        let load = LoadSpec::fraction_of_capacity(1.0, 5);
        assert_eq!(load.flits_per_node_cycle(mesh()), 0.5);
        assert!((load.packets_per_node_cycle(mesh()) - 0.1).abs() < 1e-12);
        assert_eq!(load.fraction(), 1.0);
        assert_eq!(load.packet_length(), 5);
    }

    #[test]
    #[should_panic(expected = "load fraction must be positive")]
    fn zero_load_panics() {
        LoadSpec::fraction_of_capacity(0.0, 5);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_panics() {
        LoadSpec::fraction_of_capacity(0.5, 0);
    }

    #[test]
    fn generator_meets_offered_rate() {
        let load = LoadSpec::fraction_of_capacity(0.6, 5);
        let mut generator = TrafficGenerator::uniform(mesh(), load, Rng::from_seed(3));
        let cycles = 10_000u64;
        let mut total = 0usize;
        for t in 0..cycles {
            total += generator.tick(Cycle::new(t)).len();
        }
        let expected = load.packets_per_node_cycle(mesh()) * 64.0 * cycles as f64;
        let got = total as f64;
        assert!(
            (got - expected).abs() < expected * 0.02,
            "{got} vs {expected}"
        );
        assert_eq!(generator.created(), total as u64);
    }

    #[test]
    fn packet_ids_are_unique_and_dense() {
        let load = LoadSpec::fraction_of_capacity(0.9, 5);
        let mut generator = TrafficGenerator::uniform(mesh(), load, Rng::from_seed(8));
        let mut ids = Vec::new();
        for t in 0..500 {
            for p in generator.tick(Cycle::new(t)) {
                ids.push(p.id.raw());
                assert_eq!(p.created_at, Cycle::new(t));
                assert_ne!(p.src, p.dest);
                assert_eq!(p.length_flits, 5);
            }
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate packet ids");
        assert_eq!(sorted.last().copied(), Some(ids.len() as u64 - 1));
    }

    #[test]
    fn same_seed_same_traffic() {
        let load = LoadSpec::fraction_of_capacity(0.5, 5);
        let mut a = TrafficGenerator::uniform(mesh(), load, Rng::from_seed(42));
        let mut b = TrafficGenerator::uniform(mesh(), load, Rng::from_seed(42));
        for t in 0..200 {
            assert_eq!(a.tick(Cycle::new(t)), b.tick(Cycle::new(t)));
        }
    }

    #[test]
    fn bernoulli_kind_also_meets_rate() {
        let load = LoadSpec::fraction_of_capacity(0.5, 5);
        let mut generator = TrafficGenerator::new(
            mesh(),
            load,
            Box::new(Uniform),
            InjectionKind::Bernoulli,
            Rng::from_seed(3),
        );
        let cycles = 20_000u64;
        let mut total = 0usize;
        for t in 0..cycles {
            total += generator.tick(Cycle::new(t)).len();
        }
        let expected = load.packets_per_node_cycle(mesh()) * 64.0 * cycles as f64;
        assert!((total as f64 - expected).abs() < expected * 0.05);
    }

    #[test]
    fn debug_shows_pattern_name() {
        let load = LoadSpec::fraction_of_capacity(0.5, 5);
        let generator = TrafficGenerator::uniform(mesh(), load, Rng::from_seed(1));
        let dbg = format!("{generator:?}");
        assert!(dbg.contains("uniform"), "{dbg}");
    }
}

#[cfg(test)]
mod length_mix_tests {
    use super::*;
    use crate::Uniform;

    fn mesh() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn bimodal_mean_and_samples() {
        let d = LengthDistribution::Bimodal {
            short: 1,
            long: 21,
            short_fraction: 0.75,
        };
        assert!((d.mean() - 6.0).abs() < 1e-12);
        let mut rng = Rng::from_seed(3);
        let mut saw_short = false;
        let mut saw_long = false;
        for _ in 0..1000 {
            match d.sample(&mut rng) {
                1 => saw_short = true,
                21 => saw_long = true,
                other => panic!("unexpected length {other}"),
            }
        }
        assert!(saw_short && saw_long);
    }

    #[test]
    fn mixed_lengths_preserve_flit_rate() {
        let d = LengthDistribution::Bimodal {
            short: 1,
            long: 21,
            short_fraction: 0.75,
        };
        let load = LoadSpec::with_lengths(0.6, d);
        assert_eq!(load.packet_length(), 6);
        let mut generator = TrafficGenerator::new(
            mesh(),
            load,
            Box::new(Uniform),
            InjectionKind::ConstantRate,
            Rng::from_seed(5),
        );
        let cycles = 20_000u64;
        let mut flits = 0u64;
        for t in 0..cycles {
            for p in generator.tick(Cycle::new(t)) {
                flits += p.length_flits as u64;
            }
        }
        let expected = load.flits_per_node_cycle(mesh()) * 64.0 * cycles as f64;
        assert!(
            (flits as f64 - expected).abs() < expected * 0.03,
            "{flits} flits vs expected {expected}"
        );
    }

    #[test]
    fn onoff_kind_meets_mean_rate() {
        let load = LoadSpec::fraction_of_capacity(0.4, 5);
        let mut generator = TrafficGenerator::new(
            mesh(),
            load,
            Box::new(Uniform),
            InjectionKind::OnOff {
                peak_rate: 0.5,
                mean_on: 16.0,
            },
            Rng::from_seed(7),
        );
        let cycles = 50_000u64;
        let mut total = 0usize;
        for t in 0..cycles {
            total += generator.tick(Cycle::new(t)).len();
        }
        let expected = load.packets_per_node_cycle(mesh()) * 64.0 * cycles as f64;
        assert!(
            (total as f64 - expected).abs() < expected * 0.05,
            "{total} vs {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "mix probability")]
    fn invalid_mix_panics() {
        LoadSpec::with_lengths(
            0.5,
            LengthDistribution::Bimodal {
                short: 1,
                long: 5,
                short_fraction: 1.5,
            },
        );
    }
}
