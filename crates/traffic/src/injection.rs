//! Temporal injection processes: *when* each node creates a packet.
//!
//! The paper uses "a constant rate source \[that\] injects packets at a
//! percentage of the capacity of the network". [`ConstantRate`] reproduces
//! that: a deterministic arrival every `1/rate` cycles (with accumulated
//! fractional credit), optionally phase-jittered per node so that all 64
//! sources do not fire in lock-step. [`Bernoulli`] is the memoryless
//! alternative common in later literature.

use noc_engine::Rng;

/// An injection process: decides how many packets a node creates in a
/// given cycle, at a configured mean rate in packets/cycle.
pub trait InjectionProcess {
    /// Number of packets to create this cycle (usually 0 or 1).
    fn arrivals(&mut self, rng: &mut Rng) -> u32;

    /// Mean rate in packets per cycle.
    fn rate(&self) -> f64;

    /// Name used in experiment logs.
    fn name(&self) -> &'static str;
}

/// Deterministic constant-rate arrivals: one packet every `1/rate` cycles,
/// using fractional accumulation so any rate in `(0, 1]` is met exactly in
/// the long run.
///
/// # Examples
///
/// ```
/// use noc_engine::Rng;
/// use noc_traffic::{ConstantRate, InjectionProcess};
///
/// let mut src = ConstantRate::new(0.25);
/// let mut rng = Rng::from_seed(0);
/// let total: u32 = (0..1000).map(|_| src.arrivals(&mut rng)).sum();
/// assert_eq!(total, 250);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ConstantRate {
    rate: f64,
    credit: f64,
}

impl ConstantRate {
    /// Creates a constant-rate source.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `(0, 1]` packets/cycle.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "constant rate must be within (0, 1] packets/cycle"
        );
        ConstantRate { rate, credit: 0.0 }
    }

    /// Creates a constant-rate source with a random initial phase, so that
    /// a population of sources does not inject in lock-step.
    pub fn with_random_phase(rate: f64, rng: &mut Rng) -> Self {
        let mut s = ConstantRate::new(rate);
        s.credit = rng.unit_f64();
        s
    }
}

impl InjectionProcess for ConstantRate {
    fn arrivals(&mut self, _rng: &mut Rng) -> u32 {
        self.credit += self.rate;
        if self.credit >= 1.0 {
            self.credit -= 1.0;
            1
        } else {
            0
        }
    }

    fn rate(&self) -> f64 {
        self.rate
    }

    fn name(&self) -> &'static str {
        "constant-rate"
    }
}

/// Memoryless arrivals: one packet this cycle with probability `rate`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bernoulli {
    rate: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli source.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `(0, 1]` packets/cycle.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "bernoulli rate must be within (0, 1] packets/cycle"
        );
        Bernoulli { rate }
    }
}

impl InjectionProcess for Bernoulli {
    fn arrivals(&mut self, rng: &mut Rng) -> u32 {
        u32::from(rng.chance(self.rate))
    }

    fn rate(&self) -> f64 {
        self.rate
    }

    fn name(&self) -> &'static str {
        "bernoulli"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_exact_long_run() {
        let mut rng = Rng::from_seed(0);
        for rate in [0.1, 0.33, 0.5, 0.99, 1.0] {
            let mut src = ConstantRate::new(rate);
            let cycles = 100_000;
            let total: u32 = (0..cycles).map(|_| src.arrivals(&mut rng)).sum();
            let expected = rate * cycles as f64;
            assert!(
                (total as f64 - expected).abs() <= 1.0,
                "rate {rate}: {total} vs {expected}"
            );
        }
    }

    #[test]
    fn constant_rate_never_bursts() {
        let mut rng = Rng::from_seed(0);
        let mut src = ConstantRate::new(0.5);
        for _ in 0..1000 {
            assert!(src.arrivals(&mut rng) <= 1);
        }
    }

    #[test]
    fn constant_rate_spacing_is_even() {
        let mut rng = Rng::from_seed(0);
        let mut src = ConstantRate::new(0.25);
        let mut gaps = Vec::new();
        let mut last = None;
        for t in 0..200 {
            if src.arrivals(&mut rng) == 1 {
                if let Some(prev) = last {
                    gaps.push(t - prev);
                }
                last = Some(t);
            }
        }
        assert!(gaps.iter().all(|&g| g == 4), "gaps {gaps:?}");
    }

    #[test]
    fn random_phase_spreads_first_arrival() {
        let mut rng = Rng::from_seed(77);
        let firsts: Vec<u64> = (0..32)
            .map(|_| {
                let mut src = ConstantRate::with_random_phase(0.1, &mut rng);
                let mut t = 0;
                while src.arrivals(&mut rng) == 0 {
                    t += 1;
                }
                t
            })
            .collect();
        let distinct: std::collections::HashSet<_> = firsts.iter().collect();
        assert!(distinct.len() > 3, "phases should differ: {firsts:?}");
    }

    #[test]
    fn bernoulli_rate_calibration() {
        let mut rng = Rng::from_seed(4);
        let mut src = Bernoulli::new(0.3);
        let cycles = 100_000;
        let total: u32 = (0..cycles).map(|_| src.arrivals(&mut rng)).sum();
        let rate = total as f64 / cycles as f64;
        assert!((rate - 0.3).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "within (0, 1]")]
    fn constant_rate_zero_panics() {
        ConstantRate::new(0.0);
    }

    #[test]
    #[should_panic(expected = "within (0, 1]")]
    fn bernoulli_above_one_panics() {
        Bernoulli::new(1.01);
    }

    #[test]
    fn rates_and_names() {
        let mut rng = Rng::from_seed(0);
        let c = ConstantRate::with_random_phase(0.2, &mut rng);
        assert_eq!(c.rate(), 0.2);
        assert_eq!(c.name(), "constant-rate");
        let b = Bernoulli::new(0.4);
        assert_eq!(b.rate(), 0.4);
        assert_eq!(b.name(), "bernoulli");
    }
}
