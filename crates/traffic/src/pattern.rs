//! Spatial traffic patterns: which destination each packet targets.
//!
//! The paper evaluates uniformly distributed traffic to random
//! destinations ([`Uniform`]). The standard synthetic permutations used in
//! interconnection-network studies are also provided so that users of the
//! library can stress flow control under adversarial spatial loads.

use noc_engine::Rng;
use noc_topology::{Coord, Mesh, NodeId};

/// A spatial traffic pattern: maps a source node to a destination node,
/// possibly randomly.
pub trait TrafficPattern {
    /// Picks the destination for a packet injected at `src`.
    ///
    /// Implementations must never return `src` itself; self-addressed
    /// packets never enter the network and would distort load accounting.
    fn destination(&self, mesh: Mesh, src: NodeId, rng: &mut Rng) -> NodeId;

    /// Name used in experiment logs.
    fn name(&self) -> &'static str;
}

/// Uniform random traffic: each packet targets a destination drawn
/// uniformly from all nodes other than the source (the paper's workload).
///
/// # Examples
///
/// ```
/// use noc_engine::Rng;
/// use noc_topology::Mesh;
/// use noc_traffic::{TrafficPattern, Uniform};
///
/// let mesh = Mesh::new(8, 8);
/// let mut rng = Rng::from_seed(1);
/// let src = mesh.node_at(3, 3);
/// let dst = Uniform.destination(mesh, src, &mut rng);
/// assert_ne!(dst, src);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Uniform;

impl TrafficPattern for Uniform {
    fn destination(&self, mesh: Mesh, src: NodeId, rng: &mut Rng) -> NodeId {
        // Draw from n-1 values and skip over the source: uniform over all
        // other nodes without rejection sampling.
        let n = mesh.node_count();
        let mut raw = rng.index(n - 1);
        if raw >= src.index() {
            raw += 1;
        }
        NodeId::new(raw as u16)
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Matrix-transpose permutation: `(x, y)` sends to `(y, x)`.
///
/// Nodes on the diagonal (whose transpose is themselves) fall back to
/// uniform random destinations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Transpose;

impl TrafficPattern for Transpose {
    fn destination(&self, mesh: Mesh, src: NodeId, rng: &mut Rng) -> NodeId {
        let c = mesh.coord(src);
        if c.x == c.y || c.y >= mesh.width() || c.x >= mesh.height() {
            return Uniform.destination(mesh, src, rng);
        }
        mesh.node(Coord::new(c.y, c.x))
    }

    fn name(&self) -> &'static str {
        "transpose"
    }
}

/// Bit-complement permutation: node `i` sends to `n - 1 - i`.
///
/// On an even-sized mesh this is a fixed-point-free permutation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitComplement;

impl TrafficPattern for BitComplement {
    fn destination(&self, mesh: Mesh, src: NodeId, rng: &mut Rng) -> NodeId {
        let dest = NodeId::new((mesh.node_count() - 1 - src.index()) as u16);
        if dest == src {
            return Uniform.destination(mesh, src, rng);
        }
        dest
    }

    fn name(&self) -> &'static str {
        "bit-complement"
    }
}

/// Tornado traffic: each node sends halfway around its row, a classic
/// adversary for dimension-ordered routing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tornado;

impl TrafficPattern for Tornado {
    fn destination(&self, mesh: Mesh, src: NodeId, rng: &mut Rng) -> NodeId {
        let c = mesh.coord(src);
        let half = mesh.width() / 2;
        if half == 0 {
            return Uniform.destination(mesh, src, rng);
        }
        let dest = mesh.node(Coord::new((c.x + half) % mesh.width(), c.y));
        if dest == src {
            Uniform.destination(mesh, src, rng)
        } else {
            dest
        }
    }

    fn name(&self) -> &'static str {
        "tornado"
    }
}

/// Hotspot traffic: with probability `fraction`, packets target one fixed
/// hotspot node; otherwise they pick a uniform destination.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hotspot {
    /// The node that receives the concentrated share of traffic.
    pub hotspot: NodeId,
    /// Probability that any given packet targets the hotspot.
    pub fraction: f64,
}

impl Hotspot {
    /// Creates a hotspot pattern.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn new(hotspot: NodeId, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "hotspot fraction must be within [0, 1]"
        );
        Hotspot { hotspot, fraction }
    }
}

impl TrafficPattern for Hotspot {
    fn destination(&self, mesh: Mesh, src: NodeId, rng: &mut Rng) -> NodeId {
        if src != self.hotspot && rng.chance(self.fraction) {
            self.hotspot
        } else {
            Uniform.destination(mesh, src, rng)
        }
    }

    fn name(&self) -> &'static str {
        "hotspot"
    }
}

/// A fixed permutation supplied by the caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    table: Vec<NodeId>,
}

impl Permutation {
    /// Creates a permutation pattern from an explicit destination table.
    ///
    /// # Panics
    ///
    /// Panics if any entry maps a node to itself.
    pub fn new(table: Vec<NodeId>) -> Self {
        for (i, d) in table.iter().enumerate() {
            assert!(d.index() != i, "permutation maps node {i} to itself");
        }
        Permutation { table }
    }

    /// A uniformly random fixed-point-free permutation (random derangement
    /// by repeated shuffling).
    pub fn random(mesh: Mesh, rng: &mut Rng) -> Self {
        let n = mesh.node_count();
        let mut table: Vec<NodeId> = (0..n as u16).map(NodeId::new).collect();
        loop {
            rng.shuffle(&mut table);
            if table.iter().enumerate().all(|(i, d)| d.index() != i) {
                return Permutation { table };
            }
        }
    }
}

impl TrafficPattern for Permutation {
    fn destination(&self, _mesh: Mesh, src: NodeId, _rng: &mut Rng) -> NodeId {
        self.table[src.index()]
    }

    fn name(&self) -> &'static str {
        "permutation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(8, 8)
    }

    #[test]
    fn uniform_never_self_and_covers_all() {
        let mesh = mesh();
        let mut rng = Rng::from_seed(11);
        let src = mesh.node_at(2, 2);
        let mut seen = vec![false; mesh.node_count()];
        for _ in 0..20_000 {
            let d = Uniform.destination(mesh, src, &mut rng);
            assert_ne!(d, src);
            seen[d.index()] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert_eq!(covered, mesh.node_count() - 1);
    }

    #[test]
    fn uniform_is_unbiased() {
        let mesh = mesh();
        let mut rng = Rng::from_seed(5);
        let src = mesh.node_at(0, 0);
        let mut counts = vec![0u32; mesh.node_count()];
        let trials = 63_000;
        for _ in 0..trials {
            counts[Uniform.destination(mesh, src, &mut rng).index()] += 1;
        }
        let expected = trials as f64 / 63.0;
        for (i, &c) in counts.iter().enumerate() {
            if i == src.index() {
                assert_eq!(c, 0);
            } else {
                assert!(
                    (c as f64 - expected).abs() < expected * 0.2,
                    "node {i} count {c} too far from {expected}"
                );
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let mesh = mesh();
        let mut rng = Rng::from_seed(0);
        let src = mesh.node_at(2, 5);
        let d = Transpose.destination(mesh, src, &mut rng);
        assert_eq!(mesh.coord(d), Coord::new(5, 2));
    }

    #[test]
    fn transpose_diagonal_falls_back_to_uniform() {
        let mesh = mesh();
        let mut rng = Rng::from_seed(0);
        let src = mesh.node_at(3, 3);
        for _ in 0..100 {
            assert_ne!(Transpose.destination(mesh, src, &mut rng), src);
        }
    }

    #[test]
    fn bit_complement_mirrors() {
        let mesh = mesh();
        let mut rng = Rng::from_seed(0);
        let src = mesh.node_at(0, 0);
        let d = BitComplement.destination(mesh, src, &mut rng);
        assert_eq!(mesh.coord(d), Coord::new(7, 7));
    }

    #[test]
    fn tornado_goes_halfway_around_row() {
        let mesh = mesh();
        let mut rng = Rng::from_seed(0);
        let d = Tornado.destination(mesh, mesh.node_at(1, 4), &mut rng);
        assert_eq!(mesh.coord(d), Coord::new(5, 4));
    }

    #[test]
    fn hotspot_concentration() {
        let mesh = mesh();
        let mut rng = Rng::from_seed(9);
        let hs = Hotspot::new(mesh.node_at(4, 4), 0.5);
        let src = mesh.node_at(0, 0);
        let hits = (0..10_000)
            .filter(|_| hs.destination(mesh, src, &mut rng) == mesh.node_at(4, 4))
            .count();
        // 50% targeted plus ~1/63 of the uniform remainder.
        let expected = 10_000.0 * (0.5 + 0.5 / 63.0);
        assert!((hits as f64 - expected).abs() < 300.0, "hits {hits}");
    }

    #[test]
    #[should_panic(expected = "fraction must be within")]
    fn hotspot_bad_fraction_panics() {
        Hotspot::new(NodeId::new(0), 1.5);
    }

    #[test]
    fn random_permutation_is_derangement() {
        let mesh = mesh();
        let mut rng = Rng::from_seed(31);
        let p = Permutation::random(mesh, &mut rng);
        for src in mesh.nodes() {
            assert_ne!(p.destination(mesh, src, &mut rng), src);
        }
    }

    #[test]
    #[should_panic(expected = "maps node 0 to itself")]
    fn permutation_with_fixed_point_panics() {
        Permutation::new(vec![NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn names_are_distinct() {
        let names = [
            Uniform.name(),
            Transpose.name(),
            BitComplement.name(),
            Tornado.name(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
