//! Packet descriptors.

use noc_engine::Cycle;
use noc_topology::NodeId;
use std::fmt;

/// Globally unique packet identifier.
///
/// Identifiers are assigned by the traffic generator in creation order and
/// are carried (as simulator metadata, not modelled bits) by every flit so
/// that delivery can be checked end to end.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(u64);

impl PacketId {
    /// Creates a packet id from a raw counter value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PacketId(raw)
    }

    /// Returns the raw counter value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Everything the network needs to know about one packet to be injected.
///
/// # Examples
///
/// ```
/// use noc_engine::Cycle;
/// use noc_topology::NodeId;
/// use noc_traffic::{Packet, PacketId};
///
/// let p = Packet {
///     id: PacketId::new(0),
///     src: NodeId::new(0),
///     dest: NodeId::new(63),
///     length_flits: 5,
///     created_at: Cycle::ZERO,
/// };
/// assert_eq!(p.length_flits, 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Unique identifier.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Number of data flits (the paper uses 5 or 21).
    pub length_flits: u32,
    /// Cycle at which the first flit of the packet was created; packet
    /// latency is measured from here to ejection of the last flit,
    /// including source queueing (paper Section 4).
    pub created_at: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_id_round_trip_and_display() {
        let id = PacketId::new(17);
        assert_eq!(id.raw(), 17);
        assert_eq!(id.to_string(), "p17");
    }

    #[test]
    fn packet_is_copy_and_comparable() {
        let p = Packet {
            id: PacketId::new(1),
            src: NodeId::new(2),
            dest: NodeId::new(3),
            length_flits: 21,
            created_at: Cycle::new(100),
        };
        let q = p;
        assert_eq!(p, q);
    }
}
