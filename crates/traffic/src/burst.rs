//! Bursty injection: a two-state Markov-modulated (on/off) process.
//!
//! The paper evaluates smooth constant-rate sources; real traffic is
//! bursty, and burstiness is exactly what stresses buffer turnaround —
//! the resource flit-reservation flow control manages. An [`OnOff`]
//! source alternates between an *on* state, injecting at `peak_rate`, and
//! an *off* state injecting nothing, with geometrically distributed state
//! holding times. The long-run average rate is
//! `peak_rate · E[on] / (E[on] + E[off])`.

use crate::InjectionProcess;
use noc_engine::Rng;

/// A two-state Markov-modulated on/off injection process.
///
/// # Examples
///
/// ```
/// use noc_engine::Rng;
/// use noc_traffic::{InjectionProcess, OnOff};
///
/// // Mean rate 0.1 packets/cycle delivered in bursts of ~8 cycles at
/// // rate 0.4.
/// let mut src = OnOff::with_mean_rate(0.1, 0.4, 8.0);
/// let mut rng = Rng::from_seed(3);
/// let total: u32 = (0..200_000).map(|_| src.arrivals(&mut rng)).sum();
/// let rate = total as f64 / 200_000.0;
/// assert!((rate - 0.1).abs() < 0.01);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct OnOff {
    peak_rate: f64,
    /// Probability of leaving the on state each cycle (1 / E[on length]).
    p_exit_on: f64,
    /// Probability of leaving the off state each cycle.
    p_exit_off: f64,
    on: bool,
    mean_rate: f64,
}

impl OnOff {
    /// Creates an on/off source from explicit state-exit probabilities.
    ///
    /// # Panics
    ///
    /// Panics unless `peak_rate ∈ (0, 1]` and both exit probabilities are
    /// within `(0, 1]`.
    pub fn new(peak_rate: f64, p_exit_on: f64, p_exit_off: f64) -> Self {
        assert!(
            peak_rate > 0.0 && peak_rate <= 1.0,
            "peak rate must be within (0, 1]"
        );
        assert!(
            p_exit_on > 0.0 && p_exit_on <= 1.0 && p_exit_off > 0.0 && p_exit_off <= 1.0,
            "state-exit probabilities must be within (0, 1]"
        );
        let e_on = 1.0 / p_exit_on;
        let e_off = 1.0 / p_exit_off;
        OnOff {
            peak_rate,
            p_exit_on,
            p_exit_off,
            on: false,
            mean_rate: peak_rate * e_on / (e_on + e_off),
        }
    }

    /// Creates an on/off source that delivers `mean_rate` on average,
    /// bursting at `peak_rate` with mean burst length `mean_on` cycles.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < mean_rate < peak_rate ≤ 1` and `mean_on ≥ 1`.
    pub fn with_mean_rate(mean_rate: f64, peak_rate: f64, mean_on: f64) -> Self {
        assert!(
            mean_rate > 0.0 && mean_rate < peak_rate && peak_rate <= 1.0,
            "need 0 < mean_rate < peak_rate <= 1"
        );
        assert!(mean_on >= 1.0, "mean burst length must be at least 1");
        // mean = peak * E_on / (E_on + E_off)  =>  E_off = E_on (peak/mean - 1)
        let e_off = mean_on * (peak_rate / mean_rate - 1.0);
        OnOff::new(peak_rate, 1.0 / mean_on, 1.0 / e_off.max(1.0))
    }

    /// `true` while the source is in its bursting state.
    pub fn is_on(&self) -> bool {
        self.on
    }
}

impl InjectionProcess for OnOff {
    fn arrivals(&mut self, rng: &mut Rng) -> u32 {
        // State transition first, then emission from the new state.
        let p_exit = if self.on {
            self.p_exit_on
        } else {
            self.p_exit_off
        };
        if rng.chance(p_exit) {
            self.on = !self.on;
        }
        if self.on {
            u32::from(rng.chance(self.peak_rate))
        } else {
            0
        }
    }

    fn rate(&self) -> f64 {
        self.mean_rate
    }

    fn name(&self) -> &'static str {
        "on-off"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_run_rate_matches_mean() {
        let mut rng = Rng::from_seed(11);
        for (mean, peak, on) in [(0.05, 0.5, 4.0), (0.2, 0.8, 16.0), (0.1, 0.2, 32.0)] {
            let mut src = OnOff::with_mean_rate(mean, peak, on);
            let cycles = 400_000;
            let total: u32 = (0..cycles).map(|_| src.arrivals(&mut rng)).sum();
            let rate = total as f64 / cycles as f64;
            assert!(
                (rate - mean).abs() < mean * 0.1,
                "mean {mean}: measured {rate}"
            );
            assert!((src.rate() - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn is_burstier_than_bernoulli() {
        // Compare the variance of per-window counts against a Bernoulli
        // source of equal mean rate: the on/off source must be burstier.
        let mut rng = Rng::from_seed(5);
        let window = 32;
        let windows = 4_000;
        let count_variance = |arrivals: &mut dyn FnMut(&mut Rng) -> u32, rng: &mut Rng| {
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..windows {
                let c: u32 = (0..window).map(|_| arrivals(rng)).sum();
                sum += c as f64;
                sumsq += (c as f64) * (c as f64);
            }
            let mean = sum / windows as f64;
            sumsq / windows as f64 - mean * mean
        };
        let mut onoff = OnOff::with_mean_rate(0.1, 0.5, 16.0);
        let var_onoff = count_variance(&mut |r| onoff.arrivals(r), &mut rng);
        let mut bern = crate::Bernoulli::new(0.1);
        let var_bern = count_variance(&mut |r| bern.arrivals(r), &mut rng);
        assert!(
            var_onoff > var_bern * 2.0,
            "on/off variance {var_onoff:.2} vs bernoulli {var_bern:.2}"
        );
    }

    #[test]
    fn emits_nothing_while_off() {
        let mut src = OnOff::new(1.0, 0.001, 0.001);
        assert!(!src.is_on());
        // Force the off state by construction and check a dry stretch is
        // plausible: with p_exit_off = 0.001 the first few cycles are
        // almost surely silent.
        let mut rng = Rng::from_seed(1);
        let first_ten: u32 = (0..10).map(|_| src.arrivals(&mut rng)).sum();
        assert!(first_ten <= 10);
    }

    #[test]
    #[should_panic(expected = "0 < mean_rate < peak_rate")]
    fn mean_above_peak_panics() {
        OnOff::with_mean_rate(0.5, 0.4, 8.0);
    }

    #[test]
    #[should_panic(expected = "within (0, 1]")]
    fn zero_peak_panics() {
        OnOff::new(0.0, 0.5, 0.5);
    }

    #[test]
    fn name_and_rate() {
        let src = OnOff::with_mean_rate(0.1, 0.4, 8.0);
        assert_eq!(src.name(), "on-off");
        assert!((src.rate() - 0.1).abs() < 1e-12);
    }
}
