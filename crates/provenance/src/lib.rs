//! Per-flit latency provenance: where every cycle of a packet's
//! latency went.
//!
//! The paper's argument is causal — flit reservation lowers base
//! latency because routing and arbitration happen *in advance* on the
//! control network, and raises saturation throughput because buffer
//! turnaround drops to zero (Peh & Dally, HPCA 2000, Sections 1 and 5).
//! This crate turns the existing trace-event stream into that evidence:
//!
//! * [`Phase`] — the nine-way cycle attribution model (source queueing,
//!   control lead, route computation, VC-allocation stall,
//!   credit/turnaround stall, buffer wait, switch traversal, channel
//!   traversal, ejection);
//! * [`ProvenanceCollector`] — a [`noc_engine::trace::TraceSink`] that
//!   folds the event stream into per-flit [`FlitRecord`]s whose phase
//!   components sum *exactly* to the measured end-to-end latency;
//! * [`chrome_trace`] — a serde-free Chrome trace-event / Perfetto
//!   export ([`noc_metrics::Json`]), one track per router, nested spans
//!   per flit, openable directly in `ui.perfetto.dev`.
//!
//! Tracing is sampled (`sample_every`) and costs nothing when off: the
//! collector rides the same `TraceSink` machinery as every other sink,
//! so the default `NullSink` configuration compiles all emit sites and
//! the routers' stall-provenance scans away.

pub mod chrome;
pub mod collector;
pub mod phase;

pub use chrome::chrome_trace;
pub use collector::{
    FlitRecord, HopKind, HopSpan, PhaseRow, ProvenanceCollector, ProvenanceReport,
};
pub use phase::{stall_phase, Phase, PHASE_COUNT};
