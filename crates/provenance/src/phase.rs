//! The phase model: where a cycle of a flit's lifetime can go.
//!
//! Every cycle between a packet's creation and the ejection of one of
//! its flits is attributed to exactly one [`Phase`]. The mapping from
//! raw [`TraceKind`] events to phases lives here, in wildcard-free
//! matches, so adding a trace event without deciding its provenance
//! role is a compile error — the two layers cannot silently drift.

use noc_engine::trace::TraceKind;

/// Number of phases; the length of per-flit attribution arrays.
pub const PHASE_COUNT: usize = 10;

/// One component of a flit's end-to-end latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Waiting in the source queue before the network acted on the
    /// packet (both disciplines; includes injection-channel backlog).
    SourceQueue,
    /// Control-flit lead time (FR): from the packet's first control-flit
    /// transmission until its data flit entered the network. Routing and
    /// scheduling decisions made during this window are hidden here
    /// rather than charged to the data flit — the paper's
    /// "pre-reservation hides decision latency".
    ControlLead,
    /// The route-computation cycle of a head flit at each hop
    /// (VC baseline only; FR routes in the control plane).
    RouteCompute,
    /// Cycles a head flit waited for a downstream virtual-channel grant
    /// (VC baseline only).
    VcAllocStall,
    /// Cycles a flit waited for downstream credit — the buffer-turnaround
    /// wait flit reservation eliminates (zero for FR by construction).
    CreditStall,
    /// Residual in-router wait: queued behind other flits of the same
    /// VC, parked awaiting a reserved departure slot (FR), or waiting
    /// for a packet-sized buffer/tail under VCT/SAF.
    BufferWait,
    /// Switch traversal, including cycles lost to switch arbitration.
    SwitchTraversal,
    /// Wire time between routers (and the injection channel's delay).
    ChannelTraversal,
    /// The final cycle delivering the flit into the destination's
    /// network interface.
    Ejection,
    /// End-to-end recovery delay under fault injection: the window
    /// between a flit's original injection and the injection of the copy
    /// that finally delivered (NACK/timeout wait plus earlier failed
    /// traversals). Zero in every fault-free run.
    Retransmit,
}

impl Phase {
    /// Every phase, in attribution-table order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::SourceQueue,
        Phase::ControlLead,
        Phase::RouteCompute,
        Phase::VcAllocStall,
        Phase::CreditStall,
        Phase::BufferWait,
        Phase::SwitchTraversal,
        Phase::ChannelTraversal,
        Phase::Ejection,
        Phase::Retransmit,
    ];

    /// Index into per-flit attribution arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name, used in tables and trace span names.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SourceQueue => "source_queue",
            Phase::ControlLead => "control_lead",
            Phase::RouteCompute => "route_compute",
            Phase::VcAllocStall => "vc_alloc_stall",
            Phase::CreditStall => "credit_stall",
            Phase::BufferWait => "buffer_wait",
            Phase::SwitchTraversal => "switch_traversal",
            Phase::ChannelTraversal => "channel_traversal",
            Phase::Ejection => "ejection",
            Phase::Retransmit => "retransmit",
        }
    }
}

/// The phase a stall-marker event charges its cycle to, or `None` for
/// events that mark span boundaries instead of stalled cycles.
///
/// This match is deliberately wildcard-free: adding a [`TraceKind`]
/// variant without extending it (and the collector) fails to compile.
pub fn stall_phase(kind: &TraceKind) -> Option<Phase> {
    match kind {
        TraceKind::VcAllocStall { .. } => Some(Phase::VcAllocStall),
        TraceKind::CreditStall { .. } => Some(Phase::CreditStall),
        // Switch-arbitration losses are part of switch traversal time.
        TraceKind::SwitchStall { .. } => Some(Phase::SwitchTraversal),
        // Control-plane stalls extend the control lead, not the data path.
        TraceKind::ControlStall { .. } => Some(Phase::ControlLead),
        TraceKind::PacketInjected { .. }
        | TraceKind::FlitInjected { .. }
        | TraceKind::ControlSent { .. }
        | TraceKind::ControlRetried { .. }
        | TraceKind::ReservationMade { .. }
        | TraceKind::ChannelGrant { .. }
        | TraceKind::BufferAlloc { .. }
        | TraceKind::BufferFree { .. }
        | TraceKind::DataSent { .. }
        | TraceKind::VcDataSent { .. }
        | TraceKind::QueueEnq { .. }
        | TraceKind::QueueDeq { .. }
        | TraceKind::CreditSent { .. }
        | TraceKind::FlitEjected { .. }
        | TraceKind::PacketDelivered { .. } => None,
        // Fault-layer events are span boundaries / bookkeeping, never
        // per-cycle stall markers: the retransmit window is attributed
        // wholesale by the collector from injection timestamps.
        TraceKind::DataCorrupted { .. }
        | TraceKind::ControlDropped { .. }
        | TraceKind::CorruptDiscarded { .. }
        | TraceKind::DuplicateDiscarded { .. }
        | TraceKind::NackIssued { .. }
        | TraceKind::AckIssued { .. }
        | TraceKind::PacketRetransmitted { .. }
        | TraceKind::RetransmitTimeout { .. }
        | TraceKind::LinkMasked { .. }
        | TraceKind::StageContractViolation { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_complete_and_ordered() {
        assert_eq!(Phase::ALL.len(), PHASE_COUNT);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        for a in Phase::ALL {
            for b in Phase::ALL {
                assert_eq!(a.name() == b.name(), a == b);
            }
        }
    }

    #[test]
    fn stall_markers_map_to_phases() {
        assert_eq!(
            stall_phase(&TraceKind::VcAllocStall { packet: 1, seq: 0 }),
            Some(Phase::VcAllocStall)
        );
        assert_eq!(
            stall_phase(&TraceKind::CreditStall { packet: 1, seq: 0 }),
            Some(Phase::CreditStall)
        );
        assert_eq!(
            stall_phase(&TraceKind::SwitchStall { packet: 1, seq: 0 }),
            Some(Phase::SwitchTraversal)
        );
        assert_eq!(
            stall_phase(&TraceKind::ControlStall { packet: 1 }),
            Some(Phase::ControlLead)
        );
    }
}
