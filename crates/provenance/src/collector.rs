//! Span reconstruction: folds the raw trace event stream into per-flit
//! latency-provenance records.
//!
//! The collector is a [`TraceSink`], so it plugs into routers and
//! network exactly like the invariant checker: share one instance
//! through a [`noc_engine::trace::SharedSink`]. It tracks a sampled
//! subset of packets (`packet % sample_every == 0`) through a small
//! per-flit state machine — in a router, in flight on a wire — and
//! closes one [`HopSpan`] per router visit with an *exact* cycle
//! decomposition: the per-hop components always sum to the hop
//! residency, so a record's phase totals sum to its measured
//! end-to-end latency by construction.

use crate::phase::{Phase, PHASE_COUNT};
use noc_engine::trace::{TraceEvent, TraceKind, TraceSink};
use std::collections::BTreeMap;

/// Which discipline produced a hop's events (decides whether a routing
/// cycle can be charged to the flit: FR routes in the control plane).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopKind {
    /// Virtual-channel baseline (arrivals via `QueueEnq`).
    Vc,
    /// Flit reservation (arrivals via `BufferAlloc`, or bypass).
    Fr,
    /// Injection hop not yet identified (refined by the first
    /// arrival-class event; stays unknown for same-cycle FR bypass).
    Unknown,
}

/// One router visit of one flit, with its exact cycle decomposition.
///
/// `route + vc_alloc_stall + credit_stall + buffer_wait + switch +
/// ejection == depart - arrive` always holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopSpan {
    /// Router node visited.
    pub node: u16,
    /// Cycle the flit arrived at this router (or was injected).
    pub arrive: u64,
    /// Cycle the flit departed (equals `arrive` for an FR bypass).
    pub depart: u64,
    /// Discipline that produced the hop.
    pub kind: HopKind,
    /// Route-computation cycles (VC heads only; 0 or 1).
    pub route: u64,
    /// Cycles waiting for a downstream VC grant.
    pub vc_alloc_stall: u64,
    /// Cycles waiting for downstream credit.
    pub credit_stall: u64,
    /// Residual queueing/parked wait.
    pub buffer_wait: u64,
    /// Switch traversal plus arbitration-loss cycles.
    pub switch: u64,
    /// Final delivery cycle (destination hop only; 0 or 1).
    pub ejection: u64,
}

impl HopSpan {
    /// Cycles the flit spent at this router.
    pub fn residency(&self) -> u64 {
        self.depart - self.arrive
    }
}

/// The complete provenance of one delivered flit.
#[derive(Clone, Debug)]
pub struct FlitRecord {
    /// Packet id.
    pub packet: u64,
    /// Flit sequence within the packet.
    pub seq: u32,
    /// Source node.
    pub src: u16,
    /// Destination node.
    pub dest: u16,
    /// Cycle the packet was created (entered its source queue).
    pub created: u64,
    /// Cycle this flit entered the network.
    pub injected: u64,
    /// Cycle the packet's first control flit was sent (FR only).
    pub first_control: Option<u64>,
    /// Cycle this flit was ejected at the destination.
    pub ejected: u64,
    /// Router visits in path order (first entry is the source router).
    pub hops: Vec<HopSpan>,
    /// Cycles per [`Phase`], indexed by [`Phase::index`]. Sums to
    /// `ejected - created` exactly.
    pub phases: [u64; PHASE_COUNT],
}

impl FlitRecord {
    /// Measured end-to-end latency of this flit (source queueing
    /// included, as the paper's Section 4 defines it).
    pub fn end_to_end(&self) -> u64 {
        self.ejected - self.created
    }

    /// Sum of the phase attribution — equals [`FlitRecord::end_to_end`]
    /// for every well-formed record.
    pub fn attributed(&self) -> u64 {
        self.phases.iter().sum()
    }
}

/// Per-packet context shared by the packet's flits.
#[derive(Clone, Debug)]
struct PacketState {
    created: u64,
    src: u16,
    dest: u16,
    first_control: Option<u64>,
    control_stalls: u64,
    delivered_latency: Option<u64>,
}

/// Where a tracked flit currently is.
#[derive(Clone, Debug)]
enum Cursor {
    /// Inside a router since `since`, with this hop's stall counts.
    InRouter {
        node: u16,
        since: u64,
        kind: HopKind,
        vc_stalls: u64,
        credit_stalls: u64,
        switch_stalls: u64,
    },
    /// On a wire between routers (wire gaps are recovered from the
    /// closed hops' depart/arrive cycles at finalization).
    InFlight,
}

#[derive(Clone, Debug)]
struct FlitState {
    /// Most recent injection — the copy currently walking the network.
    injected: u64,
    /// Original injection. Differs from `injected` only after an
    /// end-to-end retransmission; the gap becomes [`Phase::Retransmit`].
    first_injected: u64,
    cursor: Cursor,
    hops: Vec<HopSpan>,
}

/// A [`TraceSink`] that reconstructs per-flit provenance records from
/// the event stream.
///
/// # Examples
///
/// ```
/// use noc_provenance::ProvenanceCollector;
/// let collector = ProvenanceCollector::new(1); // sample every packet
/// let report = collector.finish();
/// assert_eq!(report.records.len(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct ProvenanceCollector {
    sample_every: u64,
    packets: BTreeMap<u64, PacketState>,
    flits: BTreeMap<(u64, u32), FlitState>,
    records: Vec<FlitRecord>,
    malformed: u64,
}

impl ProvenanceCollector {
    /// Creates a collector tracking packets whose id is divisible by
    /// `sample_every` (1 = every packet).
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is zero.
    pub fn new(sample_every: u64) -> Self {
        assert!(sample_every >= 1, "sample_every must be at least 1");
        ProvenanceCollector {
            sample_every,
            packets: BTreeMap::new(),
            flits: BTreeMap::new(),
            records: Vec::new(),
            malformed: 0,
        }
    }

    fn sampled(&self, packet: u64) -> bool {
        packet.is_multiple_of(self.sample_every)
    }

    /// Closes an open hop with the exact residual decomposition.
    ///
    /// Residency `r = depart - arrive`. Stall markers only ever fire on
    /// the cycles strictly between arrival and departure, so the counts
    /// sum to at most `r - 1`, one cycle is the traversal itself
    /// (switch, or ejection at the destination), a VC head flit is
    /// charged one routing cycle when the residency has room for it,
    /// and whatever remains is buffer wait. The components therefore
    /// sum to exactly `r`; a violation (possible only if the router
    /// emitted inconsistent events) is counted as malformed and clamped.
    #[allow(clippy::too_many_arguments)]
    fn close_hop(
        &mut self,
        node: u16,
        arrive: u64,
        depart: u64,
        kind: HopKind,
        seq: u32,
        vc_stalls: u64,
        credit_stalls: u64,
        switch_stalls: u64,
        eject: bool,
    ) -> HopSpan {
        let mut hop = HopSpan {
            node,
            arrive,
            depart,
            kind,
            route: 0,
            vc_alloc_stall: 0,
            credit_stall: 0,
            buffer_wait: 0,
            switch: 0,
            ejection: 0,
        };
        let r = depart.saturating_sub(arrive);
        if depart < arrive {
            self.malformed += 1;
            return hop;
        }
        if r == 0 {
            // FR same-cycle bypass: the flit crossed without residency.
            return hop;
        }
        let stalls = vc_stalls + credit_stalls + switch_stalls;
        hop.vc_alloc_stall = vc_stalls;
        hop.credit_stall = credit_stalls;
        if eject {
            hop.ejection = 1;
            hop.switch = switch_stalls;
        } else {
            hop.switch = switch_stalls + 1;
        }
        if kind == HopKind::Vc && seq == 0 && r >= 2 + stalls {
            hop.route = 1;
        }
        let charged = hop.route + hop.vc_alloc_stall + hop.credit_stall + hop.switch + hop.ejection;
        match r.checked_sub(charged) {
            Some(rest) => hop.buffer_wait = rest,
            None => self.malformed += 1,
        }
        hop
    }

    /// A flit arrived at a router (`QueueEnq` for VC, `BufferAlloc` for
    /// FR). For the injection hop this refines the discipline; from a
    /// wire it opens a new hop.
    fn on_arrival(&mut self, packet: u64, seq: u32, node: u16, t: u64, kind: HopKind) {
        let Some(f) = self.flits.get_mut(&(packet, seq)) else {
            return;
        };
        let mut bad = false;
        match &mut f.cursor {
            Cursor::InRouter {
                node: n,
                since,
                kind: k,
                ..
            } => {
                if *n == node && *since == t {
                    *k = kind;
                } else {
                    bad = true;
                }
            }
            Cursor::InFlight => {
                f.cursor = Cursor::InRouter {
                    node,
                    since: t,
                    kind,
                    vc_stalls: 0,
                    credit_stalls: 0,
                    switch_stalls: 0,
                };
            }
        }
        if bad {
            self.malformed += 1;
        }
    }

    /// A flit departed a router onto a link (`DataSent`/`VcDataSent`).
    fn on_departure(&mut self, packet: u64, seq: u32, node: u16, t: u64) {
        let Some(mut f) = self.flits.remove(&(packet, seq)) else {
            return;
        };
        match f.cursor {
            Cursor::InRouter {
                node: n,
                since,
                kind,
                vc_stalls,
                credit_stalls,
                switch_stalls,
            } => {
                if n != node {
                    self.malformed += 1;
                }
                let hop = self.close_hop(
                    n,
                    since,
                    t,
                    kind,
                    seq,
                    vc_stalls,
                    credit_stalls,
                    switch_stalls,
                    false,
                );
                f.hops.push(hop);
            }
            Cursor::InFlight => {
                // FR bypass: the flit crossed this router in its arrival
                // cycle without ever being buffered. Zero-residency hop.
                f.hops.push(HopSpan {
                    node,
                    arrive: t,
                    depart: t,
                    kind: HopKind::Fr,
                    route: 0,
                    vc_alloc_stall: 0,
                    credit_stall: 0,
                    buffer_wait: 0,
                    switch: 0,
                    ejection: 0,
                });
            }
        }
        f.cursor = Cursor::InFlight;
        self.flits.insert((packet, seq), f);
    }

    /// A flit left the network: close the destination hop and finalize
    /// the record.
    fn on_eject(&mut self, packet: u64, seq: u32, node: u16, t: u64) {
        let Some(mut f) = self.flits.remove(&(packet, seq)) else {
            return;
        };
        match f.cursor {
            Cursor::InRouter {
                node: n,
                since,
                kind,
                vc_stalls,
                credit_stalls,
                switch_stalls,
            } => {
                if n != node {
                    self.malformed += 1;
                }
                let hop = self.close_hop(
                    n,
                    since,
                    t,
                    kind,
                    seq,
                    vc_stalls,
                    credit_stalls,
                    switch_stalls,
                    true,
                );
                f.hops.push(hop);
            }
            Cursor::InFlight => {
                // FR bypass straight into the destination interface.
                f.hops.push(HopSpan {
                    node,
                    arrive: t,
                    depart: t,
                    kind: HopKind::Fr,
                    route: 0,
                    vc_alloc_stall: 0,
                    credit_stall: 0,
                    buffer_wait: 0,
                    switch: 0,
                    ejection: 0,
                });
            }
        }
        let Some(p) = self.packets.get(&packet) else {
            self.malformed += 1;
            return;
        };
        let mut phases = [0u64; PHASE_COUNT];
        // Pre-injection segments. The first control flit precedes data
        // injection by construction; `min` keeps both segments
        // non-negative regardless.
        let sq_end = p
            .first_control
            .unwrap_or(f.first_injected)
            .min(f.first_injected);
        phases[Phase::SourceQueue.index()] = sq_end - p.created;
        phases[Phase::ControlLead.index()] = f.first_injected - sq_end;
        // Recovery window: from the original injection to the injection
        // of the copy that delivered (zero without retransmission).
        phases[Phase::Retransmit.index()] = f.injected - f.first_injected;
        // Wire gaps between consecutive hops.
        let mut channel = 0u64;
        for pair in f.hops.windows(2) {
            if pair[1].arrive < pair[0].depart {
                self.malformed += 1;
            } else {
                channel += pair[1].arrive - pair[0].depart;
            }
        }
        phases[Phase::ChannelTraversal.index()] = channel;
        for hop in &f.hops {
            phases[Phase::RouteCompute.index()] += hop.route;
            phases[Phase::VcAllocStall.index()] += hop.vc_alloc_stall;
            phases[Phase::CreditStall.index()] += hop.credit_stall;
            phases[Phase::BufferWait.index()] += hop.buffer_wait;
            phases[Phase::SwitchTraversal.index()] += hop.switch;
            phases[Phase::Ejection.index()] += hop.ejection;
        }
        let record = FlitRecord {
            packet,
            seq,
            src: p.src,
            dest: p.dest,
            created: p.created,
            injected: f.first_injected,
            first_control: p.first_control,
            ejected: t,
            hops: f.hops,
            phases,
        };
        if record.attributed() != record.end_to_end() {
            self.malformed += 1;
        }
        self.records.push(record);
    }

    /// Consumes the collector, producing the final report. Flits still
    /// in flight (undelivered at the end of the run) are counted, not
    /// reported as records.
    pub fn finish(self) -> ProvenanceReport {
        let mut records = self.records;
        records.sort_by_key(|r| (r.packet, r.seq));
        let mut delivered: Vec<(u64, u64)> = self
            .packets
            .iter()
            .filter_map(|(&id, p)| p.delivered_latency.map(|l| (id, l)))
            .collect();
        delivered.sort_unstable();
        let control_stall_cycles = self.packets.values().map(|p| p.control_stalls).sum();
        ProvenanceReport {
            records,
            open_flits: self.flits.len(),
            malformed: self.malformed,
            control_stall_cycles,
            delivered,
            sample_every: self.sample_every,
        }
    }
}

impl TraceSink for ProvenanceCollector {
    // This match is deliberately wildcard-free (like
    // `crate::phase::stall_phase`): a new `TraceKind` variant cannot be
    // added without deciding how provenance treats it.
    fn emit(&mut self, event: TraceEvent) {
        let TraceEvent { cycle, node, kind } = event;
        let t = cycle.raw();
        match kind {
            TraceKind::PacketInjected {
                packet, src, dest, ..
            } => {
                if self.sampled(packet)
                    && self
                        .packets
                        .insert(
                            packet,
                            PacketState {
                                created: t,
                                src,
                                dest,
                                first_control: None,
                                control_stalls: 0,
                                delivered_latency: None,
                            },
                        )
                        .is_some()
                {
                    self.malformed += 1;
                }
            }
            TraceKind::FlitInjected { packet, seq } => {
                if self.packets.contains_key(&packet) {
                    let cursor = Cursor::InRouter {
                        node,
                        since: t,
                        kind: HopKind::Unknown,
                        vc_stalls: 0,
                        credit_stalls: 0,
                        switch_stalls: 0,
                    };
                    if let Some(f) = self.flits.get_mut(&(packet, seq)) {
                        // A retransmitted copy: keep the original
                        // injection time (the gap becomes the retransmit
                        // phase) and restart the hop walk for this copy.
                        f.injected = t;
                        f.cursor = cursor;
                        f.hops.clear();
                    } else {
                        self.flits.insert(
                            (packet, seq),
                            FlitState {
                                injected: t,
                                first_injected: t,
                                cursor,
                                hops: Vec::new(),
                            },
                        );
                    }
                }
            }
            TraceKind::ControlSent { packet, .. } => {
                if let Some(p) = self.packets.get_mut(&packet) {
                    if p.first_control.is_none() {
                        p.first_control = Some(t);
                    }
                }
            }
            TraceKind::ControlRetried { .. } => {}
            TraceKind::ReservationMade { .. } => {}
            TraceKind::ChannelGrant { .. } => {}
            TraceKind::BufferAlloc { packet, seq, .. } => {
                self.on_arrival(packet, seq, node, t, HopKind::Fr);
            }
            TraceKind::BufferFree { .. } => {}
            TraceKind::DataSent { packet, seq, .. } => {
                self.on_departure(packet, seq, node, t);
            }
            TraceKind::VcDataSent { packet, seq, .. } => {
                self.on_departure(packet, seq, node, t);
            }
            TraceKind::QueueEnq { packet, seq, .. } => {
                self.on_arrival(packet, seq, node, t, HopKind::Vc);
            }
            TraceKind::QueueDeq { .. } => {}
            TraceKind::CreditSent { .. } => {}
            TraceKind::FlitEjected { packet, seq } => {
                self.on_eject(packet, seq, node, t);
            }
            TraceKind::PacketDelivered { packet, latency } => {
                if let Some(p) = self.packets.get_mut(&packet) {
                    p.delivered_latency = Some(latency);
                }
            }
            TraceKind::VcAllocStall { packet, seq } => {
                if let Some(f) = self.flits.get_mut(&(packet, seq)) {
                    if let Cursor::InRouter { vc_stalls, .. } = &mut f.cursor {
                        *vc_stalls += 1;
                    }
                }
            }
            TraceKind::CreditStall { packet, seq } => {
                if let Some(f) = self.flits.get_mut(&(packet, seq)) {
                    if let Cursor::InRouter { credit_stalls, .. } = &mut f.cursor {
                        *credit_stalls += 1;
                    }
                }
            }
            TraceKind::SwitchStall { packet, seq } => {
                if let Some(f) = self.flits.get_mut(&(packet, seq)) {
                    if let Cursor::InRouter { switch_stalls, .. } = &mut f.cursor {
                        *switch_stalls += 1;
                    }
                }
            }
            TraceKind::ControlStall { packet } => {
                if let Some(p) = self.packets.get_mut(&packet) {
                    p.control_stalls += 1;
                }
            }
            // A discarded copy's walk is abandoned; the retransmitted
            // copy restarts the state at its own `FlitInjected`. Keeping
            // a first-injection record is the flit-map entry's job, so
            // only the cursor/hops of the dead copy are dropped here.
            TraceKind::CorruptDiscarded { packet, seq }
            | TraceKind::DuplicateDiscarded { packet, seq } => {
                if let Some(f) = self.flits.get_mut(&(packet, seq)) {
                    f.cursor = Cursor::InFlight;
                    f.hops.clear();
                }
            }
            // Fault bookkeeping events carry no per-flit span state.
            TraceKind::DataCorrupted { .. }
            | TraceKind::ControlDropped { .. }
            | TraceKind::NackIssued { .. }
            | TraceKind::AckIssued { .. }
            | TraceKind::PacketRetransmitted { .. }
            | TraceKind::RetransmitTimeout { .. }
            | TraceKind::LinkMasked { .. }
            | TraceKind::StageContractViolation { .. } => {}
        }
    }
}

/// Everything the collector learned from one run.
#[derive(Clone, Debug)]
pub struct ProvenanceReport {
    /// One record per sampled, delivered flit, sorted by (packet, seq).
    pub records: Vec<FlitRecord>,
    /// Sampled flits still in flight when the run ended.
    pub open_flits: usize,
    /// Internal consistency violations observed while folding events
    /// (0 on every well-formed trace; tests assert this).
    pub malformed: u64,
    /// Total control-plane stall cycles over sampled packets (FR only;
    /// context for the attribution table, not part of any flit's span).
    pub control_stall_cycles: u64,
    /// `(packet, latency)` for every sampled packet the network reported
    /// delivered — ground truth for the exactness property.
    pub delivered: Vec<(u64, u64)>,
    /// The sampling divisor the collector ran with.
    pub sample_every: u64,
}

/// One row of the stacked attribution table.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// The latency component.
    pub phase: Phase,
    /// Total cycles attributed across all records.
    pub total: u64,
    /// Mean cycles per flit.
    pub mean: f64,
    /// Fraction of all attributed cycles.
    pub share: f64,
    /// 95th percentile of the per-flit component.
    pub p95: u64,
}

impl ProvenanceReport {
    /// Aggregates the records into one row per phase (all zeros when no
    /// records were collected).
    pub fn phase_table(&self) -> Vec<PhaseRow> {
        let n = self.records.len();
        let grand: u64 = self.records.iter().map(FlitRecord::attributed).sum();
        Phase::ALL
            .iter()
            .map(|&phase| {
                let i = phase.index();
                let total: u64 = self.records.iter().map(|r| r.phases[i]).sum();
                let mut per_flit: Vec<u64> = self.records.iter().map(|r| r.phases[i]).collect();
                per_flit.sort_unstable();
                let p95 = if n == 0 {
                    0
                } else {
                    per_flit[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1]
                };
                PhaseRow {
                    phase,
                    total,
                    mean: if n == 0 { 0.0 } else { total as f64 / n as f64 },
                    share: if grand == 0 {
                        0.0
                    } else {
                        total as f64 / grand as f64
                    },
                    p95,
                }
            })
            .collect()
    }

    /// Mean attributed end-to-end latency over the records.
    pub fn mean_end_to_end(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.end_to_end() as f64)
            .sum::<f64>()
            / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_engine::Cycle;

    fn ev(cycle: u64, node: u16, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle: Cycle::new(cycle),
            node,
            kind,
        }
    }

    /// A hand-written VC flit history: inject at 10 on node 0, stall
    /// twice, forward at 14, arrive node 1 at 15, forward at 17, arrive
    /// node 2 at 18, eject at 20.
    #[test]
    fn vc_flit_decomposes_exactly() {
        let mut c = ProvenanceCollector::new(1);
        c.emit(ev(
            8,
            0,
            TraceKind::PacketInjected {
                packet: 4,
                src: 0,
                dest: 2,
                length: 1,
            },
        ));
        c.emit(ev(10, 0, TraceKind::FlitInjected { packet: 4, seq: 0 }));
        c.emit(ev(
            10,
            0,
            TraceKind::QueueEnq {
                port: 4,
                vc: 0,
                packet: 4,
                seq: 0,
            },
        ));
        c.emit(ev(12, 0, TraceKind::VcAllocStall { packet: 4, seq: 0 }));
        c.emit(ev(13, 0, TraceKind::CreditStall { packet: 4, seq: 0 }));
        c.emit(ev(
            14,
            0,
            TraceKind::VcDataSent {
                out_port: 1,
                vc: 0,
                packet: 4,
                seq: 0,
            },
        ));
        c.emit(ev(
            15,
            1,
            TraceKind::QueueEnq {
                port: 3,
                vc: 0,
                packet: 4,
                seq: 0,
            },
        ));
        c.emit(ev(
            17,
            1,
            TraceKind::VcDataSent {
                out_port: 1,
                vc: 0,
                packet: 4,
                seq: 0,
            },
        ));
        c.emit(ev(
            18,
            2,
            TraceKind::QueueEnq {
                port: 3,
                vc: 0,
                packet: 4,
                seq: 0,
            },
        ));
        c.emit(ev(20, 2, TraceKind::FlitEjected { packet: 4, seq: 0 }));
        c.emit(ev(
            20,
            2,
            TraceKind::PacketDelivered {
                packet: 4,
                latency: 12,
            },
        ));
        let report = c.finish();
        assert_eq!(report.malformed, 0);
        assert_eq!(report.open_flits, 0);
        assert_eq!(report.records.len(), 1);
        let r = &report.records[0];
        assert_eq!(r.end_to_end(), 12);
        assert_eq!(r.attributed(), 12);
        assert_eq!(r.hops.len(), 3);
        assert_eq!(r.phases[Phase::SourceQueue.index()], 2);
        assert_eq!(r.phases[Phase::VcAllocStall.index()], 1);
        assert_eq!(r.phases[Phase::CreditStall.index()], 1);
        assert_eq!(r.phases[Phase::ChannelTraversal.index()], 2);
        assert_eq!(r.phases[Phase::Ejection.index()], 1);
        // First hop: r=4, stalls=2, route charged (seq 0, r >= 2+2).
        assert_eq!(r.hops[0].route, 1);
        assert_eq!(r.hops[0].switch, 1);
        assert_eq!(r.hops[0].buffer_wait, 0);
        assert_eq!(report.delivered, vec![(4, 12)]);
    }

    /// FR: park at an intermediate router, bypass the next, eject.
    #[test]
    fn fr_bypass_charges_channel_not_buffer() {
        let mut c = ProvenanceCollector::new(1);
        c.emit(ev(
            0,
            0,
            TraceKind::PacketInjected {
                packet: 2,
                src: 0,
                dest: 2,
                length: 1,
            },
        ));
        c.emit(ev(
            1,
            0,
            TraceKind::ControlSent {
                out_port: 1,
                vc: 0,
                packet: 2,
            },
        ));
        c.emit(ev(3, 0, TraceKind::FlitInjected { packet: 2, seq: 0 }));
        c.emit(ev(
            3,
            0,
            TraceKind::DataSent {
                out_port: 1,
                packet: 2,
                seq: 0,
            },
        )); // bypass at source
        c.emit(ev(
            7,
            1,
            TraceKind::BufferAlloc {
                port: 3,
                buffer: 0,
                packet: 2,
                seq: 0,
            },
        ));
        c.emit(ev(
            9,
            1,
            TraceKind::DataSent {
                out_port: 1,
                packet: 2,
                seq: 0,
            },
        ));
        c.emit(ev(13, 2, TraceKind::FlitEjected { packet: 2, seq: 0 })); // bypass eject
        let report = c.finish();
        assert_eq!(report.malformed, 0);
        let r = &report.records[0];
        assert_eq!(r.end_to_end(), 13);
        assert_eq!(r.attributed(), 13);
        assert_eq!(r.first_control, Some(1));
        assert_eq!(r.phases[Phase::SourceQueue.index()], 1);
        assert_eq!(r.phases[Phase::ControlLead.index()], 2);
        assert_eq!(r.phases[Phase::CreditStall.index()], 0);
        assert_eq!(r.phases[Phase::RouteCompute.index()], 0);
        // Node 1: parked 2 cycles -> 1 switch + 1 buffer wait.
        assert_eq!(r.phases[Phase::SwitchTraversal.index()], 1);
        assert_eq!(r.phases[Phase::BufferWait.index()], 1);
        // Wires: 3->7 and 9->13; the bypass hops have zero residency.
        assert_eq!(r.phases[Phase::ChannelTraversal.index()], 8);
        assert_eq!(r.phases[Phase::Ejection.index()], 0);
        assert_eq!(r.hops[0].residency(), 0);
        assert_eq!(r.hops[2].residency(), 0);
    }

    #[test]
    fn unsampled_packets_are_ignored() {
        let mut c = ProvenanceCollector::new(2);
        c.emit(ev(
            0,
            0,
            TraceKind::PacketInjected {
                packet: 3,
                src: 0,
                dest: 1,
                length: 1,
            },
        ));
        c.emit(ev(1, 0, TraceKind::FlitInjected { packet: 3, seq: 0 }));
        c.emit(ev(4, 1, TraceKind::FlitEjected { packet: 3, seq: 0 }));
        let report = c.finish();
        assert!(report.records.is_empty());
        assert_eq!(report.open_flits, 0);
        assert_eq!(report.malformed, 0);
    }
}
