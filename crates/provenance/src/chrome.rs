//! Chrome trace-event / Perfetto export of a provenance report.
//!
//! The output follows the Trace Event Format's JSON-array-of-events
//! shape (`{"traceEvents": [...]}`) with complete (`"ph": "X"`) events,
//! so a written file opens directly in `ui.perfetto.dev` or
//! `chrome://tracing`. One process (`pid`) per router; one thread
//! (`tid`) per flit, so each flit's hop spans nest under their router
//! track. Timestamps are simulation cycles expressed as microseconds —
//! the viewer's time axis reads 1 µs per cycle.
//!
//! Each hop emits a parent span named `pkt <packet>.<seq>` covering the
//! flit's residency at that router, tiled exactly by its phase
//! sub-spans; the tiling order within the hop is schematic (route,
//! stalls, buffer wait, switch, ejection) but every duration is exact.
//! Wire time appears as `channel_traversal` spans on the upstream
//! router's track, and pre-injection time as `source_queue` /
//! `control_lead` spans on the source router's track.
//!
//! The export contains no wall-clock or host data, so same-seed runs
//! render byte-identical files.

use crate::collector::{FlitRecord, HopSpan, ProvenanceReport};
use crate::phase::Phase;
use noc_metrics::Json;
use std::collections::BTreeSet;

/// Builds the Chrome trace document for `report`.
///
/// `columns` is the mesh width, used to label router tracks with their
/// coordinates; pass 0 to label tracks by raw node id only.
pub fn chrome_trace(report: &ProvenanceReport, columns: u16) -> Json {
    let mut events: Vec<Json> = Vec::new();

    // One named process per router that appears in any record.
    let mut nodes: BTreeSet<u16> = BTreeSet::new();
    for r in &report.records {
        nodes.insert(r.src);
        for hop in &r.hops {
            nodes.insert(hop.node);
        }
    }
    for &node in &nodes {
        let name = if columns > 0 {
            format!("router ({}, {})", node % columns, node / columns)
        } else {
            format!("router {node}")
        };
        events.push(Json::obj(vec![
            ("name".into(), Json::str("process_name")),
            ("ph".into(), Json::str("M")),
            ("pid".into(), num(pid_of(node))),
            (
                "args".into(),
                Json::obj(vec![("name".into(), Json::str(name))]),
            ),
        ]));
    }

    for r in &report.records {
        emit_record(&mut events, r);
    }

    Json::obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::str("ms")),
        (
            "metadata".into(),
            Json::obj(vec![
                ("tool".into(), Json::str("noc-provenance")),
                ("sample_every".into(), num(report.sample_every)),
                ("records".into(), num(report.records.len() as u64)),
            ]),
        ),
    ])
}

/// Track ids: processes are routers (avoid pid 0), threads are flits.
fn pid_of(node: u16) -> u64 {
    node as u64 + 1
}

fn tid_of(r: &FlitRecord) -> u64 {
    r.packet * 64 + r.seq as u64
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

/// One complete ("X") event.
fn span(name: &str, ts: u64, dur: u64, pid: u64, tid: u64, args: Vec<(String, Json)>) -> Json {
    let mut pairs = vec![
        ("name".into(), Json::str(name)),
        ("ph".into(), Json::str("X")),
        ("ts".into(), num(ts)),
        ("dur".into(), num(dur)),
        ("pid".into(), num(pid)),
        ("tid".into(), num(tid)),
    ];
    if !args.is_empty() {
        pairs.push(("args".into(), Json::obj(args)));
    }
    Json::obj(pairs)
}

fn flit_args(r: &FlitRecord) -> Vec<(String, Json)> {
    vec![
        ("packet".into(), num(r.packet)),
        ("seq".into(), num(r.seq as u64)),
    ]
}

fn emit_record(events: &mut Vec<Json>, r: &FlitRecord) {
    let tid = tid_of(r);
    let src_pid = pid_of(r.src);

    // Pre-injection segments on the source router's track.
    let sq = r.phases[Phase::SourceQueue.index()];
    let lead = r.phases[Phase::ControlLead.index()];
    if sq > 0 {
        events.push(span(
            Phase::SourceQueue.name(),
            r.created,
            sq,
            src_pid,
            tid,
            flit_args(r),
        ));
    }
    if lead > 0 {
        events.push(span(
            Phase::ControlLead.name(),
            r.created + sq,
            lead,
            src_pid,
            tid,
            flit_args(r),
        ));
    }

    for (i, hop) in r.hops.iter().enumerate() {
        let pid = pid_of(hop.node);
        let end = if hop.ejection > 0 {
            r.ejected
        } else {
            hop.depart
        };
        // Parent span: the flit's whole residency at this router.
        events.push(span(
            &format!("pkt {}.{}", r.packet, r.seq),
            hop.arrive,
            end - hop.arrive,
            pid,
            tid,
            flit_args(r),
        ));
        emit_hop_tiles(events, hop, pid, tid);
        // Wire span to the next hop, on this router's track.
        if let Some(next) = r.hops.get(i + 1) {
            let dur = next.arrive.saturating_sub(hop.depart);
            if dur > 0 {
                events.push(span(
                    Phase::ChannelTraversal.name(),
                    hop.depart,
                    dur,
                    pid,
                    tid,
                    flit_args(r),
                ));
            }
        }
    }
}

/// Tiles a hop's parent span with its phase components. Order is
/// schematic; durations are exact and sum to the hop residency.
fn emit_hop_tiles(events: &mut Vec<Json>, hop: &HopSpan, pid: u64, tid: u64) {
    let mut ts = hop.arrive;
    for (phase, dur) in [
        (Phase::RouteCompute, hop.route),
        (Phase::VcAllocStall, hop.vc_alloc_stall),
        (Phase::CreditStall, hop.credit_stall),
        (Phase::BufferWait, hop.buffer_wait),
        (Phase::SwitchTraversal, hop.switch),
        (Phase::Ejection, hop.ejection),
    ] {
        if dur > 0 {
            events.push(span(phase.name(), ts, dur, pid, tid, Vec::new()));
            ts += dur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::HopKind;
    use crate::phase::PHASE_COUNT;

    fn record() -> FlitRecord {
        let mut phases = [0u64; PHASE_COUNT];
        phases[Phase::SourceQueue.index()] = 2;
        phases[Phase::SwitchTraversal.index()] = 1;
        phases[Phase::ChannelTraversal.index()] = 4;
        phases[Phase::Ejection.index()] = 1;
        FlitRecord {
            packet: 8,
            seq: 0,
            src: 0,
            dest: 5,
            created: 0,
            injected: 2,
            first_control: None,
            ejected: 8,
            hops: vec![
                HopSpan {
                    node: 0,
                    arrive: 2,
                    depart: 3,
                    kind: HopKind::Vc,
                    route: 0,
                    vc_alloc_stall: 0,
                    credit_stall: 0,
                    buffer_wait: 0,
                    switch: 1,
                    ejection: 0,
                },
                HopSpan {
                    node: 5,
                    arrive: 7,
                    depart: 8,
                    kind: HopKind::Vc,
                    route: 0,
                    vc_alloc_stall: 0,
                    credit_stall: 0,
                    buffer_wait: 0,
                    switch: 0,
                    ejection: 1,
                },
            ],
            phases,
        }
    }

    #[test]
    fn export_is_valid_and_nested() {
        let report = ProvenanceReport {
            records: vec![record()],
            open_flits: 0,
            malformed: 0,
            control_stall_cycles: 0,
            delivered: vec![(8, 8)],
            sample_every: 1,
        };
        let doc = chrome_trace(&report, 4);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("export parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents present");
        assert!(!events.is_empty());
        for e in events {
            assert!(e.get("name").and_then(Json::as_str).is_some());
            let ph = e.get("ph").and_then(Json::as_str).expect("ph present");
            assert!(ph == "X" || ph == "M");
            assert!(e.get("pid").and_then(Json::as_u64).is_some());
            if ph == "X" {
                assert!(e.get("ts").and_then(Json::as_u64).is_some());
                assert!(e.get("dur").and_then(Json::as_u64).is_some());
                assert!(e.get("tid").and_then(Json::as_u64).is_some());
            }
        }
        // The source-queue span sits on the source router's process.
        let sq = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("source_queue"))
            .expect("source_queue span");
        assert_eq!(sq.get("pid").and_then(Json::as_u64), Some(1));
        assert_eq!(sq.get("dur").and_then(Json::as_u64), Some(2));
        // Determinism: rendering twice is byte-identical.
        assert_eq!(text, chrome_trace(&report, 4).render());
    }
}
