//! Routing functions.
//!
//! The paper's network uses "deterministic dimension-ordered routing"; on
//! a 2-D mesh that is XY routing: correct the x offset fully, then the y
//! offset. YX routing is also provided (useful in tests and ablations).
//! Dimension-ordered routing on a mesh is minimal and deadlock-free
//! [Dally87], which is what lets both flow-control schemes run without
//! extra escape channels.

use crate::{Mesh, NodeId, Port};

/// A routing function: given the current node and the packet destination,
/// pick the output port, or `None` when `at == dest` (eject via `Local`).
pub trait RoutingFunction {
    /// Chooses the next output port towards `dest`, or `None` on arrival.
    fn route(&self, mesh: Mesh, at: NodeId, dest: NodeId) -> Option<Port>;

    /// Name used in experiment logs.
    fn name(&self) -> &'static str;
}

/// Dimension-ordered XY routing: travel east/west first, then north/south.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XyRouting;

/// Dimension-ordered YX routing: travel north/south first, then east/west.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct YxRouting;

/// Free-function XY route, shared by [`XyRouting`] and analytic helpers.
///
/// # Examples
///
/// ```
/// use noc_topology::{xy_route, Mesh, Port};
///
/// let mesh = Mesh::new(8, 8);
/// let src = mesh.node_at(0, 0);
/// let dst = mesh.node_at(2, 1);
/// assert_eq!(xy_route(mesh, src, dst), Some(Port::East));
/// assert_eq!(xy_route(mesh, dst, dst), None);
/// ```
pub fn xy_route(mesh: Mesh, at: NodeId, dest: NodeId) -> Option<Port> {
    let a = mesh.coord(at);
    let d = mesh.coord(dest);
    if a.x < d.x {
        Some(Port::East)
    } else if a.x > d.x {
        Some(Port::West)
    } else if a.y < d.y {
        Some(Port::South)
    } else if a.y > d.y {
        Some(Port::North)
    } else {
        None
    }
}

/// Free-function YX route.
pub fn yx_route(mesh: Mesh, at: NodeId, dest: NodeId) -> Option<Port> {
    let a = mesh.coord(at);
    let d = mesh.coord(dest);
    if a.y < d.y {
        Some(Port::South)
    } else if a.y > d.y {
        Some(Port::North)
    } else if a.x < d.x {
        Some(Port::East)
    } else if a.x > d.x {
        Some(Port::West)
    } else {
        None
    }
}

impl RoutingFunction for XyRouting {
    fn route(&self, mesh: Mesh, at: NodeId, dest: NodeId) -> Option<Port> {
        xy_route(mesh, at, dest)
    }

    fn name(&self) -> &'static str {
        "xy"
    }
}

impl RoutingFunction for YxRouting {
    fn route(&self, mesh: Mesh, at: NodeId, dest: NodeId) -> Option<Port> {
        yx_route(mesh, at, dest)
    }

    fn name(&self) -> &'static str {
        "yx"
    }
}

/// Walks a route from `src` to `dest`, returning the sequence of output
/// ports taken. Useful for tests and analytic channel-load computation.
///
/// # Examples
///
/// ```
/// use noc_topology::{route_path, Mesh, XyRouting};
///
/// let mesh = Mesh::new(8, 8);
/// let path = route_path(&XyRouting, mesh, mesh.node_at(1, 1), mesh.node_at(3, 0));
/// assert_eq!(path.len(), 3); // two hops east, one hop north
/// ```
pub fn route_path<R: RoutingFunction + ?Sized>(
    routing: &R,
    mesh: Mesh,
    src: NodeId,
    dest: NodeId,
) -> Vec<Port> {
    let mut path = Vec::new();
    let mut at = src;
    while let Some(port) = routing.route(mesh, at, dest) {
        path.push(port);
        at = mesh
            .neighbor(at, port)
            .expect("routing function must follow existing links");
        assert!(
            path.len() <= mesh.node_count(),
            "routing function is cycling"
        );
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_is_minimal_for_all_pairs() {
        let mesh = Mesh::new(8, 8);
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                let path = route_path(&XyRouting, mesh, src, dst);
                let dist = mesh.coord(src).manhattan_distance(mesh.coord(dst));
                assert_eq!(path.len(), dist as usize, "{src}->{dst}");
            }
        }
    }

    #[test]
    fn yx_is_minimal_for_all_pairs() {
        let mesh = Mesh::new(5, 7);
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                let path = route_path(&YxRouting, mesh, src, dst);
                let dist = mesh.coord(src).manhattan_distance(mesh.coord(dst));
                assert_eq!(path.len(), dist as usize);
            }
        }
    }

    #[test]
    fn xy_orders_dimensions() {
        let mesh = Mesh::new(8, 8);
        let path = route_path(&XyRouting, mesh, mesh.node_at(0, 0), mesh.node_at(2, 2));
        assert_eq!(path, vec![Port::East, Port::East, Port::South, Port::South]);
        let path = route_path(&YxRouting, mesh, mesh.node_at(0, 0), mesh.node_at(2, 2));
        assert_eq!(path, vec![Port::South, Port::South, Port::East, Port::East]);
    }

    #[test]
    fn route_to_self_is_none() {
        let mesh = Mesh::new(3, 3);
        let n = mesh.node_at(1, 1);
        assert_eq!(XyRouting.route(mesh, n, n), None);
        assert_eq!(YxRouting.route(mesh, n, n), None);
    }

    #[test]
    fn names() {
        assert_eq!(XyRouting.name(), "xy");
        assert_eq!(YxRouting.name(), "yx");
    }

    /// Dimension-ordered routing admits no cyclic channel dependencies on
    /// a mesh. We verify the classic turn restriction: XY never takes a
    /// vertical-then-horizontal turn.
    #[test]
    fn xy_never_turns_from_y_to_x() {
        let mesh = Mesh::new(8, 8);
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                let path = route_path(&XyRouting, mesh, src, dst);
                let mut seen_vertical = false;
                for p in path {
                    match p {
                        Port::North | Port::South => seen_vertical = true,
                        Port::East | Port::West => {
                            assert!(!seen_vertical, "illegal turn in XY routing")
                        }
                        Port::Local => unreachable!(),
                    }
                }
            }
        }
    }
}
