//! Routing functions.
//!
//! The paper's network uses "deterministic dimension-ordered routing"; on
//! a 2-D mesh that is XY routing: correct the x offset fully, then the y
//! offset. YX routing is also provided (useful in tests and ablations).
//! Dimension-ordered routing on a mesh is minimal and deadlock-free
//! [Dally87], which is what lets both flow-control schemes run without
//! extra escape channels.

use crate::{Mesh, NodeId, Port};

/// A routing function: given the current node and the packet destination,
/// pick the output port, or `None` when `at == dest` (eject via `Local`).
pub trait RoutingFunction {
    /// Chooses the next output port towards `dest`, or `None` on arrival.
    fn route(&self, mesh: Mesh, at: NodeId, dest: NodeId) -> Option<Port>;

    /// Name used in experiment logs.
    fn name(&self) -> &'static str;
}

/// Dimension-ordered XY routing: travel east/west first, then north/south.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XyRouting;

/// Dimension-ordered YX routing: travel north/south first, then east/west.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct YxRouting;

/// Free-function XY route, shared by [`XyRouting`] and analytic helpers.
///
/// # Examples
///
/// ```
/// use noc_topology::{xy_route, Mesh, Port};
///
/// let mesh = Mesh::new(8, 8);
/// let src = mesh.node_at(0, 0);
/// let dst = mesh.node_at(2, 1);
/// assert_eq!(xy_route(mesh, src, dst), Some(Port::East));
/// assert_eq!(xy_route(mesh, dst, dst), None);
/// ```
pub fn xy_route(mesh: Mesh, at: NodeId, dest: NodeId) -> Option<Port> {
    let a = mesh.coord(at);
    let d = mesh.coord(dest);
    if a.x < d.x {
        Some(Port::East)
    } else if a.x > d.x {
        Some(Port::West)
    } else if a.y < d.y {
        Some(Port::South)
    } else if a.y > d.y {
        Some(Port::North)
    } else {
        None
    }
}

/// Fault-aware XY route: dimension-ordered routing that detours around
/// permanently dead output links.
///
/// `dead_mask` has bit `1 << port.index()` set for every outgoing link of
/// `at` that has been taken out of service. With a zero mask this is
/// bit-for-bit [`xy_route`], so fault-free runs are unperturbed.
///
/// The detour rules keep the route livelock-free and deadlock-free for a
/// single failed link, using only node-local knowledge:
///
/// * **Dead horizontal link, vertical offset remaining** — correct the Y
///   offset first (a productive Y-before-X detour); the row reached
///   crosses the failed column on its own, live, horizontal link.
/// * **Dead horizontal link, destination in the same row** — misroute one
///   hop vertically (south if possible, else north); the adjacent row
///   then resumes XY east/west past the failure without ever routing
///   back, because its preferred direction is horizontal, not the return
///   hop.
/// * **Dead vertical link** — XY only travels vertically in the
///   destination's column, where no local detour exists that the
///   neighbouring column would not immediately undo (it would route
///   straight back and ping-pong). The route falls back to the
///   out-of-service link, which in this fault model is administratively
///   masked rather than severed, so the flit still drains — degraded, not
///   lost.
///
/// Every Y-before-X corner a single dead link induces sits in the failed
/// link's column; a channel-dependency cycle needs illegal corners in two
/// distinct columns, so single-failure masking preserves deadlock
/// freedom. Multiple simultaneous failures are routed best-effort.
///
/// # Examples
///
/// ```
/// use noc_topology::{masked_xy_route, xy_route, Mesh, Port};
///
/// let mesh = Mesh::new(8, 8);
/// let src = mesh.node_at(0, 0);
/// let dst = mesh.node_at(2, 0);
/// // No faults: identical to plain XY.
/// assert_eq!(masked_xy_route(mesh, src, dst, 0), xy_route(mesh, src, dst));
/// // East link dead, destination in the same row: misroute south.
/// let dead = 1 << Port::East.index();
/// assert_eq!(masked_xy_route(mesh, src, dst, dead as u8), Some(Port::South));
/// ```
pub fn masked_xy_route(mesh: Mesh, at: NodeId, dest: NodeId, dead_mask: u8) -> Option<Port> {
    let is_dead = |p: Port| dead_mask & (1u8 << p.index()) != 0;
    let preferred = xy_route(mesh, at, dest)?;
    if dead_mask == 0 || !is_dead(preferred) {
        return Some(preferred);
    }
    match preferred {
        Port::East | Port::West => {
            let a = mesh.coord(at);
            let d = mesh.coord(dest);
            let productive = if a.y < d.y {
                Some(Port::South)
            } else if a.y > d.y {
                Some(Port::North)
            } else {
                None
            };
            if let Some(v) = productive {
                if !is_dead(v) && mesh.neighbor(at, v).is_some() {
                    return Some(v);
                }
            }
            for v in [Port::South, Port::North] {
                if !is_dead(v) && mesh.neighbor(at, v).is_some() {
                    return Some(v);
                }
            }
            // Boxed in: every detour is dead or off the mesh edge.
            Some(preferred)
        }
        // Vertical hops happen only in the destination column; see above.
        Port::North | Port::South => Some(preferred),
        Port::Local => unreachable!("xy_route never yields Local"),
    }
}

/// Free-function YX route.
pub fn yx_route(mesh: Mesh, at: NodeId, dest: NodeId) -> Option<Port> {
    let a = mesh.coord(at);
    let d = mesh.coord(dest);
    if a.y < d.y {
        Some(Port::South)
    } else if a.y > d.y {
        Some(Port::North)
    } else if a.x < d.x {
        Some(Port::East)
    } else if a.x > d.x {
        Some(Port::West)
    } else {
        None
    }
}

impl RoutingFunction for XyRouting {
    fn route(&self, mesh: Mesh, at: NodeId, dest: NodeId) -> Option<Port> {
        xy_route(mesh, at, dest)
    }

    fn name(&self) -> &'static str {
        "xy"
    }
}

impl RoutingFunction for YxRouting {
    fn route(&self, mesh: Mesh, at: NodeId, dest: NodeId) -> Option<Port> {
        yx_route(mesh, at, dest)
    }

    fn name(&self) -> &'static str {
        "yx"
    }
}

/// Walks a route from `src` to `dest`, returning the sequence of output
/// ports taken. Useful for tests and analytic channel-load computation.
///
/// # Examples
///
/// ```
/// use noc_topology::{route_path, Mesh, XyRouting};
///
/// let mesh = Mesh::new(8, 8);
/// let path = route_path(&XyRouting, mesh, mesh.node_at(1, 1), mesh.node_at(3, 0));
/// assert_eq!(path.len(), 3); // two hops east, one hop north
/// ```
pub fn route_path<R: RoutingFunction + ?Sized>(
    routing: &R,
    mesh: Mesh,
    src: NodeId,
    dest: NodeId,
) -> Vec<Port> {
    let mut path = Vec::new();
    let mut at = src;
    while let Some(port) = routing.route(mesh, at, dest) {
        path.push(port);
        at = mesh
            .neighbor(at, port)
            .expect("routing function must follow existing links");
        assert!(
            path.len() <= mesh.node_count(),
            "routing function is cycling"
        );
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_is_minimal_for_all_pairs() {
        let mesh = Mesh::new(8, 8);
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                let path = route_path(&XyRouting, mesh, src, dst);
                let dist = mesh.coord(src).manhattan_distance(mesh.coord(dst));
                assert_eq!(path.len(), dist as usize, "{src}->{dst}");
            }
        }
    }

    #[test]
    fn yx_is_minimal_for_all_pairs() {
        let mesh = Mesh::new(5, 7);
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                let path = route_path(&YxRouting, mesh, src, dst);
                let dist = mesh.coord(src).manhattan_distance(mesh.coord(dst));
                assert_eq!(path.len(), dist as usize);
            }
        }
    }

    #[test]
    fn xy_orders_dimensions() {
        let mesh = Mesh::new(8, 8);
        let path = route_path(&XyRouting, mesh, mesh.node_at(0, 0), mesh.node_at(2, 2));
        assert_eq!(path, vec![Port::East, Port::East, Port::South, Port::South]);
        let path = route_path(&YxRouting, mesh, mesh.node_at(0, 0), mesh.node_at(2, 2));
        assert_eq!(path, vec![Port::South, Port::South, Port::East, Port::East]);
    }

    #[test]
    fn route_to_self_is_none() {
        let mesh = Mesh::new(3, 3);
        let n = mesh.node_at(1, 1);
        assert_eq!(XyRouting.route(mesh, n, n), None);
        assert_eq!(YxRouting.route(mesh, n, n), None);
    }

    #[test]
    fn names() {
        assert_eq!(XyRouting.name(), "xy");
        assert_eq!(YxRouting.name(), "yx");
    }

    /// Walks masked XY hops from `src` to `dest` with `dead` applied at
    /// `dead_node` only, panicking if the walk cycles.
    fn masked_path(
        mesh: Mesh,
        src: NodeId,
        dest: NodeId,
        dead_node: NodeId,
        dead: u8,
    ) -> Vec<Port> {
        let mut path = Vec::new();
        let mut at = src;
        let mut hops = 0;
        loop {
            let mask = if at == dead_node { dead } else { 0 };
            let Some(port) = masked_xy_route(mesh, at, dest, mask) else {
                return path;
            };
            path.push(port);
            at = mesh.neighbor(at, port).expect("route follows links");
            hops += 1;
            assert!(hops <= 4 * mesh.node_count(), "masked route is cycling");
        }
    }

    #[test]
    fn masked_route_with_zero_mask_is_plain_xy() {
        let mesh = Mesh::new(8, 8);
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                assert_eq!(masked_xy_route(mesh, src, dst, 0), xy_route(mesh, src, dst));
            }
        }
    }

    #[test]
    fn masked_route_detours_a_dead_horizontal_link_for_all_pairs() {
        let mesh = Mesh::new(6, 6);
        let dead_node = mesh.node_at(2, 3);
        let dead = 1u8 << Port::East.index();
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                let path = masked_path(mesh, src, dst, dead_node, dead);
                // The walk terminated (asserted inside) and never used the
                // dead link.
                let mut at = src;
                for &p in &path {
                    assert!(
                        !(at == dead_node && p == Port::East),
                        "{src}->{dst} used the dead link"
                    );
                    at = mesh.neighbor(at, p).unwrap();
                }
                assert_eq!(at, dst, "{src}->{dst} ended at {at}");
            }
        }
    }

    #[test]
    fn masked_route_productive_detour_stays_minimal() {
        let mesh = Mesh::new(6, 6);
        // East dead at (1,1); destination has a remaining Y offset, so the
        // detour corrects Y first and stays minimal.
        let dead_node = mesh.node_at(1, 1);
        let dead = 1u8 << Port::East.index();
        let src = mesh.node_at(1, 1);
        let dst = mesh.node_at(4, 3);
        let path = masked_path(mesh, src, dst, dead_node, dead);
        let dist = mesh.coord(src).manhattan_distance(mesh.coord(dst)) as usize;
        assert_eq!(path.len(), dist);
        assert_eq!(path[0], Port::South);
    }

    #[test]
    fn masked_route_same_row_misroute_costs_two_extra_hops() {
        let mesh = Mesh::new(6, 6);
        let dead_node = mesh.node_at(1, 2);
        let dead = 1u8 << Port::East.index();
        let src = mesh.node_at(1, 2);
        let dst = mesh.node_at(4, 2);
        let path = masked_path(mesh, src, dst, dead_node, dead);
        let dist = mesh.coord(src).manhattan_distance(mesh.coord(dst)) as usize;
        assert_eq!(path.len(), dist + 2);
        assert_eq!(path[0], Port::South);
        assert_eq!(*path.last().unwrap(), Port::North);
    }

    #[test]
    fn masked_route_falls_back_on_dead_vertical_links() {
        let mesh = Mesh::new(4, 4);
        let at = mesh.node_at(2, 1);
        let dst = mesh.node_at(2, 3);
        let dead = 1u8 << Port::South.index();
        // No sound local detour exists; the out-of-service link is used.
        assert_eq!(masked_xy_route(mesh, at, dst, dead), Some(Port::South));
    }

    /// Dimension-ordered routing admits no cyclic channel dependencies on
    /// a mesh. We verify the classic turn restriction: XY never takes a
    /// vertical-then-horizontal turn.
    #[test]
    fn xy_never_turns_from_y_to_x() {
        let mesh = Mesh::new(8, 8);
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                let path = route_path(&XyRouting, mesh, src, dst);
                let mut seen_vertical = false;
                for p in path {
                    match p {
                        Port::North | Port::South => seen_vertical = true,
                        Port::East | Port::West => {
                            assert!(!seen_vertical, "illegal turn in XY routing")
                        }
                        Port::Local => unreachable!(),
                    }
                }
            }
        }
    }
}
