//! The k-ary 2-mesh topology of the paper's evaluation (8×8).

use crate::{Coord, NodeId, Port};

/// A `width × height` 2-D mesh.
///
/// Nodes are numbered row-major; each node connects to its north, south,
/// east and west neighbours where they exist (no wrap-around).
///
/// # Examples
///
/// ```
/// use noc_topology::{Mesh, Port};
///
/// let mesh = Mesh::new(8, 8);
/// assert_eq!(mesh.node_count(), 64);
/// let origin = mesh.node_at(0, 0);
/// assert_eq!(mesh.neighbor(origin, Port::North), None);
/// let east = mesh.neighbor(origin, Port::East).unwrap();
/// assert_eq!(mesh.coord(east).x, 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Mesh {
    width: u16,
    height: u16,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the node count exceeds
    /// `u16::MAX`.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32 + 1,
            "mesh too large for u16 node ids"
        );
        Mesh { width, height }
    }

    /// Width (number of columns).
    #[inline]
    pub fn width(self) -> u16 {
        self.width
    }

    /// Height (number of rows).
    #[inline]
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total number of nodes.
    #[inline]
    pub fn node_count(self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Node id at coordinate `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    #[inline]
    pub fn node_at(self, x: u16, y: u16) -> NodeId {
        assert!(x < self.width && y < self.height, "coordinate out of mesh");
        NodeId::new(y * self.width + x)
    }

    /// Node id for a [`Coord`].
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the mesh.
    #[inline]
    pub fn node(self, c: Coord) -> NodeId {
        self.node_at(c.x, c.y)
    }

    /// Coordinate of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is outside the mesh.
    #[inline]
    pub fn coord(self, n: NodeId) -> Coord {
        assert!(n.index() < self.node_count(), "node id out of mesh");
        Coord::new(n.raw() % self.width, n.raw() / self.width)
    }

    /// The neighbour reached by leaving `n` through `port`, or `None` at a
    /// mesh edge or for the `Local` port.
    pub fn neighbor(self, n: NodeId, port: Port) -> Option<NodeId> {
        let c = self.coord(n);
        let (x, y) = match port {
            Port::North => (Some(c.x), c.y.checked_sub(1)),
            Port::South => (
                Some(c.x),
                if c.y + 1 < self.height {
                    Some(c.y + 1)
                } else {
                    None
                },
            ),
            Port::East => (
                if c.x + 1 < self.width {
                    Some(c.x + 1)
                } else {
                    None
                },
                Some(c.y),
            ),
            Port::West => (c.x.checked_sub(1), Some(c.y)),
            Port::Local => (None, None),
        };
        Some(self.node_at(x?, y?))
    }

    /// Iterates over all node ids.
    pub fn nodes(self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u16).map(NodeId::new)
    }

    /// Iterates over all unidirectional mesh links as
    /// `(from, out_port, to)` triples.
    pub fn links(self) -> impl Iterator<Item = (NodeId, Port, NodeId)> {
        self.nodes().flat_map(move |n| {
            Port::MESH
                .iter()
                .filter_map(move |&p| self.neighbor(n, p).map(|to| (n, p, to)))
        })
    }

    /// Average Manhattan distance over ordered pairs of *distinct* nodes —
    /// the expected hop count of uniform random traffic.
    ///
    /// For the paper's 8×8 mesh this is 5.33 hops.
    pub fn average_distance(self) -> f64 {
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in self.nodes() {
            for b in self.nodes() {
                if a != b {
                    total += self.coord(a).manhattan_distance(self.coord(b)) as u64;
                    pairs += 1;
                }
            }
        }
        total as f64 / pairs as f64
    }

    /// Network capacity under uniform random traffic with dimension-ordered
    /// routing, in flits per node per cycle.
    ///
    /// The mesh is bisection-limited: with XY routing the most loaded
    /// channels are the ones crossing the vertical mid-line, and each
    /// carries `k/4` flits per cycle per unit of injection bandwidth, so
    /// saturation injection is `4/k` flits/node/cycle (`k` the larger
    /// dimension; 0.5 for the paper's 8×8 mesh). Offered loads elsewhere in
    /// this workspace are expressed as a fraction of this capacity.
    pub fn capacity_flits_per_node_cycle(self) -> f64 {
        4.0 / self.width.max(self.height) as f64
    }

    /// Exact worst-case channel load per unit injection under uniform
    /// random traffic and XY routing, computed by enumerating all
    /// source-destination paths. [`Self::capacity_flits_per_node_cycle`] is
    /// the closed-form of `1 / max_load` for square meshes; this method
    /// exists to validate it and to handle rectangular meshes exactly.
    pub fn max_channel_load_xy(self) -> f64 {
        let n = self.node_count();
        let mut load = vec![[0u64; Port::COUNT]; n];
        for src in self.nodes() {
            for dst in self.nodes() {
                if src == dst {
                    continue;
                }
                // Walk the XY path, crediting each traversed channel.
                let mut at = src;
                while let Some(port) = crate::xy_route(self, at, dst) {
                    load[at.index()][port.index()] += 1;
                    at = self
                        .neighbor(at, port)
                        .expect("XY route must follow an existing link");
                }
            }
        }
        let flows = (n * (n - 1)) as f64;
        let max = load
            .iter()
            .flat_map(|ports| ports.iter())
            .copied()
            .max()
            .unwrap_or(0);
        // Each node injects 1 flit/cycle split evenly over (n-1) flows.
        max as f64 * n as f64 / flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_coord_round_trip() {
        let mesh = Mesh::new(8, 8);
        for n in mesh.nodes() {
            assert_eq!(mesh.node(mesh.coord(n)), n);
        }
    }

    #[test]
    fn edges_have_no_neighbors() {
        let mesh = Mesh::new(4, 3);
        assert_eq!(mesh.neighbor(mesh.node_at(0, 0), Port::North), None);
        assert_eq!(mesh.neighbor(mesh.node_at(0, 0), Port::West), None);
        assert_eq!(mesh.neighbor(mesh.node_at(3, 2), Port::South), None);
        assert_eq!(mesh.neighbor(mesh.node_at(3, 2), Port::East), None);
        assert_eq!(mesh.neighbor(mesh.node_at(1, 1), Port::Local), None);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let mesh = Mesh::new(5, 4);
        for (from, port, to) in mesh.links() {
            let back = port.opposite().unwrap();
            assert_eq!(mesh.neighbor(to, back), Some(from));
        }
    }

    #[test]
    fn link_count_matches_formula() {
        // A w×h mesh has 2*(w*(h-1) + h*(w-1)) unidirectional links.
        let mesh = Mesh::new(8, 8);
        assert_eq!(mesh.links().count(), 2 * (8 * 7 + 8 * 7));
        let rect = Mesh::new(3, 2);
        assert_eq!(rect.links().count(), 2 * (3 + 2 * 2));
    }

    #[test]
    fn average_distance_of_paper_mesh() {
        // Sum of |x1-x2| over an 8-point line is 168; over the full mesh
        // each dimension contributes 168*64, so the mean over the 64*63
        // ordered distinct pairs is 2*168*64/4032 = 16/3.
        let mesh = Mesh::new(8, 8);
        assert!((mesh.average_distance() - 16.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_of_paper_mesh_is_half_flit() {
        assert_eq!(Mesh::new(8, 8).capacity_flits_per_node_cycle(), 0.5);
    }

    #[test]
    fn capacity_matches_enumerated_channel_load() {
        // The closed form 4/k counts self-addressed traffic; the enumerated
        // load excludes it, so they differ by exactly (n-1)/n on square,
        // even-k meshes.
        for (w, h) in [(4u16, 4u16), (8, 8), (6, 6)] {
            let mesh = Mesh::new(w, h);
            let n = mesh.node_count() as f64;
            let enumerated = 1.0 / mesh.max_channel_load_xy();
            let closed_form = mesh.capacity_flits_per_node_cycle() * (n - 1.0) / n;
            assert!(
                (enumerated - closed_form).abs() < 1e-9,
                "{w}x{h}: enumerated {enumerated} vs closed form {closed_form}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_panics() {
        Mesh::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "coordinate out of mesh")]
    fn out_of_range_coordinate_panics() {
        Mesh::new(2, 2).node_at(2, 0);
    }

    #[test]
    #[should_panic(expected = "node id out of mesh")]
    fn out_of_range_node_panics() {
        Mesh::new(2, 2).coord(NodeId::new(4));
    }
}
