//! Router ports of a 2-D mesh node.
//!
//! Every router has four mesh-facing ports plus a `Local` port connecting
//! the node's processing element / network interface — the "5" that
//! appears throughout the paper's Table 1 storage formulas.

use std::fmt;

/// One of the five ports of a 2-D mesh router.
///
/// # Examples
///
/// ```
/// use noc_topology::Port;
///
/// assert_eq!(Port::East.opposite(), Some(Port::West));
/// assert_eq!(Port::Local.opposite(), None);
/// assert_eq!(Port::COUNT, 5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Port {
    /// Towards decreasing `y`.
    North,
    /// Towards increasing `y`.
    South,
    /// Towards increasing `x`.
    East,
    /// Towards decreasing `x`.
    West,
    /// The node's own network interface (injection/ejection).
    Local,
}

impl Port {
    /// Number of ports per router.
    pub const COUNT: usize = 5;

    /// All ports, in index order.
    pub const ALL: [Port; Port::COUNT] = [
        Port::North,
        Port::South,
        Port::East,
        Port::West,
        Port::Local,
    ];

    /// The four mesh-facing ports (everything but `Local`).
    pub const MESH: [Port; 4] = [Port::North, Port::South, Port::East, Port::West];

    /// Dense index in `0..Port::COUNT`, for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::South => 1,
            Port::East => 2,
            Port::West => 3,
            Port::Local => 4,
        }
    }

    /// Inverse of [`Port::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= Port::COUNT`.
    #[inline]
    pub const fn from_index(index: usize) -> Port {
        match index {
            0 => Port::North,
            1 => Port::South,
            2 => Port::East,
            3 => Port::West,
            4 => Port::Local,
            _ => panic!("port index out of range"),
        }
    }

    /// The port a neighbouring router receives on when this router sends
    /// on `self`; `None` for `Local`.
    #[inline]
    pub const fn opposite(self) -> Option<Port> {
        match self {
            Port::North => Some(Port::South),
            Port::South => Some(Port::North),
            Port::East => Some(Port::West),
            Port::West => Some(Port::East),
            Port::Local => None,
        }
    }

    /// `true` for the four mesh-facing ports.
    #[inline]
    pub const fn is_mesh(self) -> bool {
        !matches!(self, Port::Local)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Port::North => "north",
            Port::South => "south",
            Port::East => "east",
            Port::West => "west",
            Port::Local => "local",
        };
        f.write_str(name)
    }
}

/// A fixed-size table indexed by [`Port`], used for per-port router state.
///
/// # Examples
///
/// ```
/// use noc_topology::{Port, PortMap};
///
/// let mut credits: PortMap<u32> = PortMap::from_fn(|_| 4);
/// credits[Port::East] -= 1;
/// assert_eq!(credits[Port::East], 3);
/// assert_eq!(credits[Port::West], 4);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PortMap<T> {
    slots: [T; Port::COUNT],
}

impl<T> PortMap<T> {
    /// Builds a map by calling `f` for every port.
    pub fn from_fn(mut f: impl FnMut(Port) -> T) -> Self {
        PortMap {
            slots: Port::ALL.map(&mut f),
        }
    }

    /// Iterates over `(port, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Port, &T)> {
        Port::ALL.iter().map(move |&p| (p, &self.slots[p.index()]))
    }

    /// Iterates mutably over `(port, value)` pairs in index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Port, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .map(|(i, v)| (Port::from_index(i), v))
    }
}

impl<T> std::ops::Index<Port> for PortMap<T> {
    type Output = T;

    #[inline]
    fn index(&self, port: Port) -> &T {
        &self.slots[port.index()]
    }
}

impl<T> std::ops::IndexMut<Port> for PortMap<T> {
    #[inline]
    fn index_mut(&mut self, port: Port) -> &mut T {
        &mut self.slots[port.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_invertible() {
        for (i, &p) in Port::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(Port::from_index(i), p);
        }
    }

    #[test]
    #[should_panic(expected = "port index out of range")]
    fn from_index_out_of_range_panics() {
        Port::from_index(5);
    }

    #[test]
    fn opposites_are_involutive() {
        for &p in &Port::MESH {
            let o = p.opposite().unwrap();
            assert_eq!(o.opposite(), Some(p));
            assert_ne!(o, p);
        }
        assert_eq!(Port::Local.opposite(), None);
    }

    #[test]
    fn mesh_ports_exclude_local() {
        assert!(Port::MESH.iter().all(|p| p.is_mesh()));
        assert!(!Port::Local.is_mesh());
    }

    #[test]
    fn display_names() {
        assert_eq!(Port::North.to_string(), "north");
        assert_eq!(Port::Local.to_string(), "local");
    }

    #[test]
    fn port_map_from_fn_and_iter() {
        let m = PortMap::from_fn(|p| p.index() * 10);
        assert_eq!(m[Port::South], 10);
        let collected: Vec<_> = m.iter().map(|(p, &v)| (p, v)).collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(collected[4], (Port::Local, 40));
    }

    #[test]
    fn port_map_iter_mut() {
        let mut m: PortMap<u32> = PortMap::from_fn(|_| 0);
        for (p, v) in m.iter_mut() {
            *v = p.index() as u32 + 1;
        }
        assert_eq!(m[Port::Local], 5);
    }
}
