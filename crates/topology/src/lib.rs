//! # noc-topology
//!
//! Topology substrate for the flit-reservation flow-control reproduction:
//! the k-ary 2-mesh of the paper's evaluation, node/port naming, and
//! deterministic dimension-ordered routing.
//!
//! # Examples
//!
//! ```
//! use noc_topology::{Mesh, Port, XyRouting, RoutingFunction};
//!
//! let mesh = Mesh::new(8, 8);                 // the paper's network
//! assert_eq!(mesh.capacity_flits_per_node_cycle(), 0.5);
//! let src = mesh.node_at(0, 0);
//! let dst = mesh.node_at(7, 7);
//! assert_eq!(XyRouting.route(mesh, src, dst), Some(Port::East));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coord;
mod direction;
mod mesh;
mod routing;

pub use coord::{Coord, NodeId};
pub use direction::{Port, PortMap};
pub use mesh::Mesh;
pub use routing::{
    masked_xy_route, route_path, xy_route, yx_route, RoutingFunction, XyRouting, YxRouting,
};
