//! Node identifiers and 2-D coordinates.

use std::fmt;

/// Dense node identifier, `0..node_count`, in row-major order
/// (`id = y * width + x`).
///
/// # Examples
///
/// ```
/// use noc_topology::NodeId;
///
/// let n = NodeId::new(12);
/// assert_eq!(n.raw(), 12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        NodeId(raw)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Returns the raw index widened to `usize` for table lookups.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(raw: u16) -> Self {
        NodeId(raw)
    }
}

/// A position in a 2-D grid: `x` grows eastwards, `y` grows southwards.
///
/// # Examples
///
/// ```
/// use noc_topology::Coord;
///
/// let c = Coord::new(3, 5);
/// assert_eq!(c.x, 3);
/// assert_eq!(c.y, 5);
/// assert_eq!(c.manhattan_distance(Coord::new(0, 0)), 8);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    /// Column, growing eastwards.
    pub x: u16,
    /// Row, growing southwards.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    #[inline]
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan (L1) distance between two coordinates.
    #[inline]
    pub const fn manhattan_distance(self, other: Coord) -> u16 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let n: NodeId = 7u16.into();
        assert_eq!(n.raw(), 7);
        assert_eq!(n.index(), 7usize);
        assert_eq!(n.to_string(), "n7");
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Coord::new(1, 2);
        let b = Coord::new(4, 0);
        assert_eq!(a.manhattan_distance(b), 5);
        assert_eq!(b.manhattan_distance(a), 5);
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn coord_display() {
        assert_eq!(Coord::new(2, 3).to_string(), "(2, 3)");
    }
}
