//! Property test: merging per-shard registries is equivalent to recording
//! everything sequentially into one registry.
//!
//! This is the contract the sharded step phase relies on if per-worker
//! registries are ever collected independently: slicing a stream of
//! per-router counter/gauge updates into shards, recording each shard into
//! its own registry and merging must reproduce the sequential totals
//! exactly.

use noc_engine::propcheck::{check, vec_of};
use noc_metrics::MetricsRegistry;

#[test]
fn sharded_merge_equals_sequential_totals() {
    // Each event is (router, kind, amount): kind 0 => counter, 1 => gauge.
    let event = (0u64..64, 0u64..2, 1u64..100);
    let strategy = (vec_of(event, 0..200), 2u64..6);
    check(200, strategy, |(events, shards)| {
        let mut sequential = MetricsRegistry::new();
        for &(router, kind, amount) in &events {
            apply(&mut sequential, router, kind, amount);
        }

        // Shard by router (as the step phase would) and merge.
        let mut merged = MetricsRegistry::new();
        for shard in 0..shards {
            let mut part = MetricsRegistry::new();
            for &(router, kind, amount) in &events {
                if router % shards == shard {
                    apply(&mut part, router, kind, amount);
                }
            }
            merged.merge(part);
        }

        let seq_counters: Vec<_> = sequential.counters().collect();
        let merged_counters: Vec<_> = merged.counters().collect();
        assert_eq!(seq_counters, merged_counters);
        let seq_gauges: Vec<_> = sequential.gauges().collect();
        let merged_gauges: Vec<_> = merged.gauges().collect();
        assert_eq!(seq_gauges, merged_gauges);
    });
}

fn apply(reg: &mut MetricsRegistry, router: u64, kind: u64, amount: u64) {
    match kind {
        0 => reg.counter_add(&format!("router.{router}.events"), amount),
        _ => {
            let key = format!("router.{router}.load");
            let prior = reg.gauge(&key).unwrap_or(0.0);
            reg.gauge_set(&key, prior + amount as f64);
        }
    }
}
