//! # noc-metrics
//!
//! A zero-cost-when-off metrics layer for the flit-reservation simulator.
//!
//! The design mirrors `noc_engine::trace`: instrumented code talks to a
//! [`Recorder`] with a `const ENABLED` flag, and the default
//! [`NullRecorder`] compiles every recording site away — closures passed to
//! [`Recorder::record`] are never even constructed. Turning metrics on means
//! plugging a [`MetricsRegistry`] (which records into itself) into the
//! network in place of the null recorder; nothing else changes, and the
//! trace-equality and determinism suites stay bit-identical with metrics
//! off.
//!
//! What the registry holds:
//!
//! * **counters** — event counts (reservation-table hits, credit stalls,
//!   per-link flits);
//! * **gauges** — derived values (utilizations, occupancy averages);
//! * **time-weighted** — signals averaged over how long each value was held
//!   ([`noc_engine::stats::TimeWeighted`]);
//! * **series** — periodic samples for time-axis plots.
//!
//! Exports are serde-free JSON ([`Json`]) with a [`SCHEMA_VERSION`] and a
//! [`RunManifest`] (seed, scale, config, git revision, toolchain, wall
//! time), so every experiment can write a machine-readable sidecar next to
//! its text output. Wall-clock self-profiling data lives in a separate
//! `profile` section that [`strip_nondeterministic`] removes, making
//! same-seed exports byte-identical.
//!
//! # Example
//!
//! ```
//! use noc_engine::Cycle;
//! use noc_metrics::{MetricsRegistry, NullRecorder, Recorder, RunManifest};
//!
//! fn hot_loop<M: Recorder>(metrics: &mut M) {
//!     for cycle in 0..100u64 {
//!         // With NullRecorder this whole call folds away.
//!         metrics.record(|reg| {
//!             reg.counter_add("net.cycles", 1);
//!             reg.time_weighted_set("net.queued", Cycle::new(cycle), 2.0);
//!         });
//!     }
//! }
//!
//! hot_loop(&mut NullRecorder);
//! let mut reg = MetricsRegistry::new();
//! hot_loop(&mut reg);
//! assert_eq!(reg.counter("net.cycles"), 100);
//! let doc = reg.to_json(&RunManifest::new("demo", 2000, "tiny", "FR6"));
//! assert!(doc.render().contains("schema_version"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod manifest;
pub mod registry;
pub mod snapshot;
pub mod window;

pub use json::{strip_nondeterministic, Json, JsonError};
pub use manifest::{host_cpu_count, RunManifest, SCHEMA_VERSION};
pub use registry::{MetricsRegistry, NullRecorder, Recorder, Series};
pub use snapshot::{json_diff, state_digest, JsonDiff, Snapshot};
pub use window::{WindowKind, WindowSeries};

/// Writes a JSON document to `path` with a trailing newline, creating
/// parent directories as needed.
pub fn write_json_file(path: &std::path::Path, doc: &Json) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut text = doc.render();
    text.push('\n');
    std::fs::write(path, text)
}
