//! The run manifest: everything needed to reproduce or audit a metrics
//! export — seed, scale, configuration label, toolchain and source revision.

use crate::json::Json;
use std::process::Command;

/// Version number of the metrics JSON document layout. Bump when the
/// top-level structure or the meaning of existing keys changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Identifying metadata written at the top of every metrics export.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// Experiment name, e.g. `fig5` or `smoke`.
    pub experiment: String,
    /// Root RNG seed the run derives all randomness from.
    pub seed: u64,
    /// Scale preset (`tiny` / `quick` / `paper`).
    pub scale: String,
    /// Flow-control configuration label, e.g. `FR6` or `VC8`.
    pub config: String,
    /// Short git revision of the source tree, or `unknown` outside a repo.
    pub git_rev: String,
    /// `rustc --version` of the toolchain that built the binary.
    pub toolchain: String,
    /// Worker threads the step phase actually ran with (1 = sequential).
    /// Determinism makes the results independent of this, but audits need
    /// to know what was exercised.
    pub threads: u64,
    /// Physical/logical CPU count of the host the run executed on, so a
    /// BENCH row from a 1-core baseline host is self-describing next to
    /// its `threads` value. 0 when the count cannot be determined.
    pub host_cpus: u64,
    /// Wall-clock duration of the run in milliseconds. Nondeterministic;
    /// stripped by [`crate::json::strip_nondeterministic`].
    pub wall_ms: u64,
}

impl RunManifest {
    /// Builds a manifest, capturing the git revision and toolchain from the
    /// environment. `wall_ms` starts at zero — fill it in after the run.
    pub fn new(
        experiment: impl Into<String>,
        seed: u64,
        scale: impl Into<String>,
        config: impl Into<String>,
    ) -> Self {
        RunManifest {
            experiment: experiment.into(),
            seed,
            scale: scale.into(),
            config: config.into(),
            git_rev: capture_git_rev(),
            toolchain: capture_toolchain(),
            threads: 1,
            host_cpus: host_cpu_count(),
            wall_ms: 0,
        }
    }

    /// Renders the manifest as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("experiment".into(), Json::str(&self.experiment)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("scale".into(), Json::str(&self.scale)),
            ("config".into(), Json::str(&self.config)),
            ("git_rev".into(), Json::str(&self.git_rev)),
            ("toolchain".into(), Json::str(&self.toolchain)),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("host_cpus".into(), Json::Num(self.host_cpus as f64)),
            ("wall_ms".into(), Json::Num(self.wall_ms as f64)),
        ])
    }
}

fn first_line(bytes: &[u8]) -> Option<String> {
    let text = String::from_utf8_lossy(bytes);
    let line = text.lines().next()?.trim().to_string();
    if line.is_empty() {
        None
    } else {
        Some(line)
    }
}

/// The short git revision of the working tree, or `"unknown"` when git is
/// unavailable or the process runs outside a repository.
pub fn capture_git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| first_line(&o.stdout))
        .unwrap_or_else(|| "unknown".to_string())
}

/// The host's CPU count: the number of `processor` entries in
/// `/proc/cpuinfo`, falling back to `std::thread::available_parallelism`
/// off Linux (where the reading can be affinity-limited), and 0 when
/// neither source is available.
pub fn host_cpu_count() -> u64 {
    let from_cpuinfo = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .map(|text| {
            text.lines()
                .filter(|l| {
                    let mut parts = l.splitn(2, ':');
                    parts.next().map(str::trim) == Some("processor")
                })
                .count() as u64
        })
        .filter(|&n| n > 0);
    from_cpuinfo.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(0)
    })
}

/// The `rustc --version` string, or `"unknown"` when rustc is not on PATH.
pub fn capture_toolchain() -> String {
    Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| first_line(&o.stdout))
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_exports_required_keys() {
        let mut m = RunManifest::new("smoke", 2000, "quick", "FR6");
        m.wall_ms = 42;
        m.threads = 4;
        let doc = m.to_json();
        for key in [
            "experiment",
            "seed",
            "scale",
            "config",
            "git_rev",
            "toolchain",
            "threads",
            "host_cpus",
            "wall_ms",
        ] {
            assert!(doc.get(key).is_some(), "missing manifest key {key}");
        }
        assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(2000));
        assert_eq!(doc.get("config").and_then(Json::as_str), Some("FR6"));
        assert_eq!(doc.get("threads").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn host_cpu_count_is_positive_on_linux() {
        if std::path::Path::new("/proc/cpuinfo").exists() {
            assert!(host_cpu_count() > 0, "cpuinfo present but count is 0");
        }
    }
}
