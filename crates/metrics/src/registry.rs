//! The metrics registry: named counters, gauges, time-weighted signals and
//! periodically sampled series, plus the zero-cost [`Recorder`] indirection
//! that lets instrumented code compile down to nothing when metrics are off.

use crate::json::Json;
use crate::manifest::{RunManifest, SCHEMA_VERSION};
use crate::window::{WindowKind, WindowSeries};
use noc_engine::stats::TimeWeighted;
use noc_engine::Cycle;
use std::collections::BTreeMap;

/// A periodically sampled signal. The cycle axis is implicit: sample `i`
/// was taken at cycle `start + i * period`, which keeps exports compact.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Sampling period in cycles.
    pub period: u64,
    /// Cycle of the first sample.
    pub start: u64,
    /// One value per sample, in time order.
    pub values: Vec<f64>,
}

/// A registry of named metrics.
///
/// Keys are dotted paths (`router.12.reservation_hits`,
/// `net.queued_flits`); `BTreeMap` storage makes every export
/// deterministically ordered. Four kinds are kept:
///
/// * **counters** — monotonically accumulated `u64` event counts;
/// * **gauges** — `f64` point-in-time or derived values;
/// * **time-weighted** — [`TimeWeighted`] signals whose average weights each
///   value by how long it was held;
/// * **series** — periodic samples for time-axis plots;
/// * **windows** — epoch-bucketed [`WindowSeries`] over power-of-two cycle
///   windows (the time-resolved telemetry layer).
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    time_weighted: BTreeMap<String, TimeWeighted>,
    series: BTreeMap<String, Series>,
    windows: BTreeMap<String, WindowSeries>,
    /// Latest cycle seen by any update; time-weighted averages are closed
    /// out at this watermark when exporting.
    watermark: Cycle,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.time_weighted.is_empty()
            && self.series.is_empty()
            && self.windows.is_empty()
    }

    /// Adds `delta` to a counter, creating it at zero first if needed.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.entry_counter(name) += delta;
    }

    /// Sets a counter to an absolute value (for copying out cumulative
    /// totals kept elsewhere).
    pub fn counter_set(&mut self, name: &str, value: u64) {
        *self.entry_counter(name) = value;
    }

    fn entry_counter(&mut self, name: &str) -> &mut u64 {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_string(), 0);
        }
        self.counters.get_mut(name).expect("just inserted")
    }

    /// Reads a counter; missing counters read as zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Updates a time-weighted signal at `now`, creating it (starting at
    /// `now` with `value`) on first use.
    pub fn time_weighted_set(&mut self, name: &str, now: Cycle, value: f64) {
        self.watermark = self.watermark.max(now);
        match self.time_weighted.get_mut(name) {
            Some(tw) => tw.set(now, value),
            None => {
                self.time_weighted
                    .insert(name.to_string(), TimeWeighted::new(now, value));
            }
        }
    }

    /// Reads a time-weighted signal.
    pub fn time_weighted(&self, name: &str) -> Option<&TimeWeighted> {
        self.time_weighted.get(name)
    }

    /// Appends one sample to a series, creating it with the given `period`
    /// and `start` cycle on first use.
    pub fn series_push(&mut self, name: &str, period: u64, cycle: Cycle, value: f64) {
        self.watermark = self.watermark.max(cycle);
        match self.series.get_mut(name) {
            Some(s) => s.values.push(value),
            None => {
                self.series.insert(
                    name.to_string(),
                    Series {
                        period,
                        start: cycle.raw(),
                        values: vec![value],
                    },
                );
            }
        }
    }

    /// Reads a series.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Adds `delta` into the Sum window covering `cycle`, creating the
    /// series on first use. Windows span `1 << log2` cycles; recording
    /// must move forward in time (window indices nondecreasing).
    ///
    /// # Panics
    ///
    /// Panics if an existing series under `name` has a different `log2`
    /// or is a Gauge window.
    pub fn window_add(&mut self, name: &str, log2: u32, cycle: Cycle, delta: f64) {
        self.watermark = self.watermark.max(cycle);
        let w = cycle.raw() >> log2;
        self.window_entry(name, log2, w, WindowKind::Sum)
            .add(w, delta);
    }

    /// Sets the value of absolute window index `window` in a Gauge window
    /// series, creating the series on first use.
    ///
    /// # Panics
    ///
    /// Panics if an existing series under `name` has a different `log2`
    /// or is a Sum window.
    pub fn window_set(&mut self, name: &str, log2: u32, window: u64, value: f64) {
        self.watermark = self.watermark.max(Cycle::new(window << log2));
        self.window_entry(name, log2, window, WindowKind::Gauge)
            .set(window, value);
    }

    fn window_entry(
        &mut self,
        name: &str,
        log2: u32,
        w: u64,
        kind: WindowKind,
    ) -> &mut WindowSeries {
        if !self.windows.contains_key(name) {
            self.windows
                .insert(name.to_string(), WindowSeries::new(log2, w, kind));
        }
        let s = self.windows.get_mut(name).expect("just inserted");
        assert_eq!(s.log2, log2, "window {name}: log2 mismatch");
        assert_eq!(s.kind, kind, "window {name}: kind mismatch");
        s
    }

    /// Reads a window series.
    pub fn window(&self, name: &str) -> Option<&WindowSeries> {
        self.windows.get(name)
    }

    /// Iterates window series in sorted key order.
    pub fn windows(&self) -> impl Iterator<Item = (&str, &WindowSeries)> {
        self.windows.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sum of a window series' values; 0 when absent. For Sum windows this
    /// equals the aggregate counter of the same name.
    pub fn window_total(&self, name: &str) -> f64 {
        self.windows.get(name).map_or(0.0, WindowSeries::total)
    }

    /// Iterates counters in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in sorted key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another registry into this one, as when per-shard registries
    /// from a parallel sweep are combined: counters and gauges add;
    /// time-weighted signals and series must be key-disjoint (a shard owns
    /// its signals outright) and are moved over. Sum windows on the same
    /// grid add element-wise, aligned by absolute window index, keeping the
    /// window-sum == aggregate-counter identity through the merge; Gauge
    /// windows must be key-disjoint like series.
    ///
    /// # Panics
    ///
    /// Panics if `other` shares a time-weighted, series or Gauge-window key
    /// with `self`, or if a shared Sum window disagrees on `log2`.
    pub fn merge(&mut self, other: MetricsRegistry) {
        for (k, v) in other.counters {
            *self.entry_counter(&k) += v;
        }
        for (k, v) in other.gauges {
            *self.gauges.entry(k).or_insert(0.0) += v;
        }
        for (k, v) in other.time_weighted {
            let clash = self.time_weighted.insert(k, v);
            assert!(clash.is_none(), "merge: duplicate time-weighted key");
        }
        for (k, v) in other.series {
            let clash = self.series.insert(k, v);
            assert!(clash.is_none(), "merge: duplicate series key");
        }
        for (k, v) in other.windows {
            match self.windows.get_mut(&k) {
                Some(mine) => {
                    assert_eq!(
                        mine.kind,
                        WindowKind::Sum,
                        "merge: duplicate gauge-window key {k}"
                    );
                    mine.merge_add(&v);
                }
                None => {
                    self.windows.insert(k, v);
                }
            }
        }
        self.watermark = self.watermark.max(other.watermark);
    }

    /// Exports the registry plus `manifest` as a schema-versioned JSON
    /// document.
    ///
    /// Counters and gauges whose keys start with `profile.` are wall-clock
    /// self-profiling data and land in a separate top-level `profile`
    /// object so that [`crate::json::strip_nondeterministic`] can drop them
    /// before determinism comparisons. Time-weighted signals export their
    /// held value and their average up to the registry's watermark cycle.
    pub fn to_json(&self, manifest: &RunManifest) -> Json {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut profile = Vec::new();
        for (k, v) in &self.counters {
            let entry = (k.clone(), Json::Num(*v as f64));
            if k.starts_with("profile.") {
                profile.push(entry);
            } else {
                counters.push(entry);
            }
        }
        for (k, v) in &self.gauges {
            let entry = (k.clone(), Json::Num(*v));
            if k.starts_with("profile.") {
                profile.push(entry);
            } else {
                gauges.push(entry);
            }
        }
        let time_weighted = self
            .time_weighted
            .iter()
            .map(|(k, tw)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("current".into(), Json::Num(tw.current())),
                        ("average".into(), Json::Num(tw.average(self.watermark))),
                    ]),
                )
            })
            .collect();
        let series = self
            .series
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("period".into(), Json::Num(s.period as f64)),
                        ("start".into(), Json::Num(s.start as f64)),
                        (
                            "values".into(),
                            Json::Arr(s.values.iter().map(|&v| Json::Num(v)).collect()),
                        ),
                    ]),
                )
            })
            .collect();
        let windows = self
            .windows
            .iter()
            .map(|(k, w)| (k.clone(), w.to_json()))
            .collect();
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
            ("manifest".into(), manifest.to_json()),
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("time_weighted".into(), Json::Obj(time_weighted)),
            ("series".into(), Json::Obj(series)),
            ("windows".into(), Json::Obj(windows)),
            ("profile".into(), Json::Obj(profile)),
        ])
    }
}

/// The zero-cost metrics indirection, mirroring `noc_engine::trace::TraceSink`.
///
/// Instrumented code calls [`Recorder::record`] with a closure that updates
/// the registry. For [`NullRecorder`] the associated `ENABLED` constant is
/// `false`, so the closure — including any `format!` key construction inside
/// it — is never built and the whole call folds away at compile time.
pub trait Recorder {
    /// Whether this recorder keeps anything. When `false`, `record` is a
    /// no-op and callers may skip building inputs entirely.
    const ENABLED: bool = true;

    /// Gives the closure access to the underlying registry.
    fn with(&mut self, f: impl FnOnce(&mut MetricsRegistry));

    /// Records via `f` only when enabled; inlined so the disabled path
    /// vanishes.
    #[inline(always)]
    fn record(&mut self, f: impl FnOnce(&mut MetricsRegistry)) {
        if Self::ENABLED {
            self.with(f);
        }
    }
}

/// A recorder that drops everything; the default for every network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn with(&mut self, _f: impl FnOnce(&mut MetricsRegistry)) {}
}

impl Recorder for MetricsRegistry {
    #[inline(always)]
    fn with(&mut self, f: impl FnOnce(&mut MetricsRegistry)) {
        f(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_never_runs_the_closure() {
        const { assert!(!NullRecorder::ENABLED) };
        let mut null = NullRecorder;
        null.record(|_| unreachable!("NullRecorder must not invoke the closure"));
    }

    #[test]
    fn registry_recorder_runs_the_closure() {
        let mut reg = MetricsRegistry::new();
        reg.record(|r| r.counter_add("hits", 3));
        reg.record(|r| r.counter_add("hits", 2));
        assert_eq!(reg.counter("hits"), 5);
        assert_eq!(reg.counter("absent"), 0);
    }

    #[test]
    fn merge_adds_counters_and_gauges() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", 1);
        a.gauge_set("g", 0.5);
        let mut b = MetricsRegistry::new();
        b.counter_add("x", 2);
        b.counter_add("y", 7);
        b.gauge_set("g", 0.25);
        a.merge(b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 7);
        assert_eq!(a.gauge("g"), Some(0.75));
    }

    #[test]
    fn window_add_buckets_by_shift_and_zero_fills() {
        let mut reg = MetricsRegistry::new();
        reg.window_add("inj", 6, Cycle::new(10), 2.0);
        reg.window_add("inj", 6, Cycle::new(63), 1.0);
        reg.window_add("inj", 6, Cycle::new(200), 5.0);
        let w = reg.window("inj").unwrap();
        assert_eq!(w.start, 0);
        assert_eq!(w.values, vec![3.0, 0.0, 0.0, 5.0]);
        assert_eq!(reg.window_total("inj"), 8.0);
        assert_eq!(reg.window_total("absent"), 0.0);
    }

    #[test]
    fn merge_adds_sum_windows_and_moves_gauge_windows() {
        let mut a = MetricsRegistry::new();
        a.window_add("flits", 4, Cycle::new(0), 1.0);
        a.window_set("p95.a", 4, 0, 9.0);
        let mut b = MetricsRegistry::new();
        b.window_add("flits", 4, Cycle::new(16), 2.0);
        b.window_set("p95.b", 4, 1, 7.0);
        a.merge(b);
        assert_eq!(a.window("flits").unwrap().values, vec![1.0, 2.0]);
        assert_eq!(a.window("p95.a").unwrap().values, vec![9.0]);
        let pb = a.window("p95.b").unwrap();
        assert_eq!((pb.start, pb.values.clone()), (1, vec![7.0]));
    }

    #[test]
    #[should_panic(expected = "duplicate gauge-window key")]
    fn merge_rejects_gauge_window_collisions() {
        let mut a = MetricsRegistry::new();
        a.window_set("g", 4, 0, 1.0);
        let mut b = MetricsRegistry::new();
        b.window_set("g", 4, 0, 2.0);
        a.merge(b);
    }

    #[test]
    fn export_includes_windows_section() {
        let mut reg = MetricsRegistry::new();
        reg.window_add("net.offered_flits", 7, Cycle::new(130), 4.0);
        let doc = reg.to_json(&RunManifest::new("t", 1, "tiny", "cfg"));
        let w = doc
            .get("windows")
            .unwrap()
            .get("net.offered_flits")
            .unwrap();
        assert_eq!(w.get("kind").and_then(Json::as_str), Some("sum"));
        assert_eq!(w.get("log2").and_then(Json::as_u64), Some(7));
        assert_eq!(w.get("start").and_then(Json::as_u64), Some(1));
    }

    #[test]
    #[should_panic(expected = "duplicate series key")]
    fn merge_rejects_series_collisions() {
        let mut a = MetricsRegistry::new();
        a.series_push("s", 8, Cycle::ZERO, 1.0);
        let mut b = MetricsRegistry::new();
        b.series_push("s", 8, Cycle::ZERO, 2.0);
        a.merge(b);
    }

    #[test]
    fn export_separates_profile_keys() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("net.cycles", 100);
        reg.gauge_set("profile.step_ms", 12.5);
        reg.time_weighted_set("occ", Cycle::new(0), 1.0);
        reg.time_weighted_set("occ", Cycle::new(10), 3.0);
        let doc = reg.to_json(&RunManifest::new("t", 1, "tiny", "cfg"));
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("net.cycles"))
                .and_then(Json::as_u64),
            Some(100)
        );
        assert!(doc.get("gauges").unwrap().get("profile.step_ms").is_none());
        assert_eq!(
            doc.get("profile")
                .and_then(|p| p.get("profile.step_ms"))
                .and_then(Json::as_f64),
            Some(12.5)
        );
        let occ = doc.get("time_weighted").unwrap().get("occ").unwrap();
        assert_eq!(occ.get("average").and_then(Json::as_f64), Some(1.0));
        assert_eq!(occ.get("current").and_then(Json::as_f64), Some(3.0));
    }
}
