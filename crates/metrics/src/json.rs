//! A minimal, dependency-free JSON value type with a deterministic pretty
//! writer and a recursive-descent parser.
//!
//! The simulator's metrics exports must be bit-reproducible across runs with
//! the same seed, so the writer is deliberately boring: object keys keep the
//! insertion order chosen by the caller (the registry hands them over in
//! sorted `BTreeMap` order), floats render through Rust's shortest-roundtrip
//! formatter, and integral values print without a decimal point. Non-finite
//! numbers (`NaN`, ±∞) render as `null`, matching what strict JSON parsers
//! expect.
//!
//! The parser exists so the `metrics_report` bin and the CI smoke validation
//! can read the files back without pulling in `serde`.

use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`, also produced when writing non-finite numbers.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; integers are kept exactly up to 2^53.
    Num(f64),
    /// A string value.
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the writer.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(String, Json)>) -> Json {
        Json::Obj(pairs)
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9.007_199_254_740_992e15 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if the value is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Removes `key` from an object, returning the removed value.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        match self {
            Json::Obj(pairs) => {
                let idx = pairs.iter().position(|(k, _)| k == key)?;
                Some(pairs.remove(idx).1)
            }
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (two-space indent, trailing
    /// newline omitted).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_number(out, *v),
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars render on one line; nested structures
                // get one element per line.
                let flat = items
                    .iter()
                    .all(|v| !matches!(v, Json::Arr(_) | Json::Obj(_)));
                if flat {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.render_into(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        push_indent(out, indent + 1);
                        item.render_into(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    push_indent(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    push_indent(out, indent + 1);
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are never emitted by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` always sits on a
                    // char boundary, so slicing the source &str is O(1)
                    // (re-validating the tail bytes here would make
                    // parsing quadratic in the document size).
                    let c = self.text[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Removes the fields that legitimately differ between two same-seed runs:
/// the wall-clock self-profiler section and the manifest's wall-time fields.
///
/// Two metered runs with identical seeds must produce identical documents
/// after this pass — `tests/metrics.rs` and the `smoke --metrics` validation
/// both rely on it.
pub fn strip_nondeterministic(doc: &mut Json) {
    doc.remove("profile");
    if let Some(manifest) = doc.get("manifest").cloned() {
        let mut manifest = manifest;
        manifest.remove("wall_ms");
        if let Json::Obj(pairs) = doc {
            for (k, v) in pairs.iter_mut() {
                if k == "manifest" {
                    *v = manifest;
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            ("b".into(), Json::Num(0.25)),
            ("c".into(), Json::Str("x \"quoted\"\n".into())),
            (
                "d".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-3.0)]),
            ),
            ("e".into(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_exponents() {
        let doc = Json::parse(r#"{"s": "a\tbA", "n": 1.5e3}"#).expect("parse");
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("a\tbA"));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(1500.0));
    }

    #[test]
    fn strip_removes_profile_and_wall_time() {
        let mut doc = Json::Obj(vec![
            (
                "manifest".into(),
                Json::Obj(vec![
                    ("seed".into(), Json::Num(7.0)),
                    ("wall_ms".into(), Json::Num(123.0)),
                ]),
            ),
            ("profile".into(), Json::Obj(vec![])),
            ("counters".into(), Json::Obj(vec![])),
        ]);
        strip_nondeterministic(&mut doc);
        assert!(doc.get("profile").is_none());
        let manifest = doc.get("manifest").unwrap();
        assert!(manifest.get("wall_ms").is_none());
        assert_eq!(manifest.get("seed").and_then(Json::as_u64), Some(7));
    }
}
