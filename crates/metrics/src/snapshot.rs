//! Post-mortem state introspection: the [`Snapshot`] trait, the canonical
//! state digest, and a structural JSON diff.
//!
//! Every stateful simulator component (buffer pools, reservation tables,
//! pipeline stages, routers, the network itself) implements [`Snapshot`]
//! to dump its complete state as a [`Json`] value. Dumps are built only
//! from deterministic state (no wall clocks, no host identifiers) and all
//! hash-ordered collections are sorted before they are rendered, so the
//! same simulation state always renders to the same bytes — which is what
//! makes [`state_digest`] a meaningful fingerprint: replaying a run
//! manifest to the captured cycle must reproduce the digest bit for bit.
//!
//! [`json_diff`] is the inspection side: a structural comparison that
//! reports every differing path, used by `frfc-inspect diff` and by the
//! black-box round-trip tests.

use crate::json::Json;

/// A component that can dump its complete deterministic state as JSON.
///
/// # Contract
///
/// * The dump must be a pure function of simulation state: two components
///   that have processed the same event history dump identical values.
/// * Iteration over hash-ordered containers must be sorted first.
/// * Nondeterministic data (wall clocks, host info) must stay out — the
///   digest of a snapshot is compared bit-for-bit across replays.
pub trait Snapshot {
    /// Dumps the component's state.
    fn snapshot(&self) -> Json;
}

/// FNV-1a offset basis (matches the golden-trace fingerprint suite).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, continuing from `hash`.
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The canonical digest of a state dump: FNV-1a over the rendered JSON,
/// formatted as 16 lowercase hex digits. Renders through [`Json::render`],
/// so digest equality is exactly byte equality of the canonical form.
pub fn state_digest(doc: &Json) -> String {
    let hash = fnv1a(FNV_OFFSET, doc.render().as_bytes());
    format!("{hash:016x}")
}

/// One difference between two JSON documents.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonDiff {
    /// Dotted path to the differing value (array indices in brackets).
    pub path: String,
    /// Short description of the difference.
    pub detail: String,
}

impl std::fmt::Display for JsonDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.detail)
    }
}

/// Renders a scalar compactly for diff output (structures abbreviate).
fn brief(v: &Json) -> String {
    match v {
        Json::Arr(items) => format!("[..{} items..]", items.len()),
        Json::Obj(pairs) => format!("{{..{} keys..}}", pairs.len()),
        other => other.render(),
    }
}

fn diff_into(a: &Json, b: &Json, path: &str, out: &mut Vec<JsonDiff>) {
    match (a, b) {
        (Json::Obj(pa), Json::Obj(pb)) => {
            for (k, va) in pa {
                match b.get(k) {
                    Some(vb) => diff_into(va, vb, &format!("{path}.{k}"), out),
                    None => out.push(JsonDiff {
                        path: format!("{path}.{k}"),
                        detail: format!("only in left ({})", brief(va)),
                    }),
                }
            }
            for (k, vb) in pb {
                if a.get(k).is_none() {
                    out.push(JsonDiff {
                        path: format!("{path}.{k}"),
                        detail: format!("only in right ({})", brief(vb)),
                    });
                }
            }
        }
        (Json::Arr(ia), Json::Arr(ib)) => {
            for (i, (va, vb)) in ia.iter().zip(ib.iter()).enumerate() {
                diff_into(va, vb, &format!("{path}[{i}]"), out);
            }
            if ia.len() != ib.len() {
                out.push(JsonDiff {
                    path: path.to_string(),
                    detail: format!("array length {} vs {}", ia.len(), ib.len()),
                });
            }
        }
        _ if a == b => {}
        _ => out.push(JsonDiff {
            path: path.to_string(),
            detail: format!("{} vs {}", brief(a), brief(b)),
        }),
    }
}

/// Structurally compares two JSON documents, returning every differing
/// path (empty when the documents are equal). Object key *order* is
/// ignored — snapshots render keys in a canonical order anyway, and a
/// reordered-but-equal document should not read as a state divergence.
pub fn json_diff(a: &Json, b: &Json) -> Vec<JsonDiff> {
    let mut out = Vec::new();
    diff_into(a, b, "$", &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::obj(vec![
            ("cycle".into(), Json::Num(42.0)),
            (
                "tables".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]),
            ),
        ])
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let a = doc();
        let b = doc();
        assert_eq!(state_digest(&a), state_digest(&b));
        let mut c = doc();
        if let Json::Obj(pairs) = &mut c {
            pairs[0].1 = Json::Num(43.0);
        }
        assert_ne!(state_digest(&a), state_digest(&c));
        assert_eq!(state_digest(&a).len(), 16);
    }

    #[test]
    fn diff_of_equal_documents_is_empty() {
        assert!(json_diff(&doc(), &doc()).is_empty());
    }

    #[test]
    fn diff_reports_paths() {
        let a = doc();
        let mut b = doc();
        if let Json::Obj(pairs) = &mut b {
            pairs[0].1 = Json::Num(7.0);
            pairs[1].1 = Json::Arr(vec![Json::Num(1.0)]);
        }
        let diffs = json_diff(&a, &b);
        let paths: Vec<&str> = diffs.iter().map(|d| d.path.as_str()).collect();
        assert!(paths.contains(&"$.cycle"), "diffs: {diffs:?}");
        assert!(paths.contains(&"$.tables"), "diffs: {diffs:?}");
    }

    #[test]
    fn diff_reports_missing_keys_both_ways() {
        let a = Json::obj(vec![("left".into(), Json::Num(1.0))]);
        let b = Json::obj(vec![("right".into(), Json::Num(2.0))]);
        let diffs = json_diff(&a, &b);
        assert_eq!(diffs.len(), 2);
        assert!(diffs[0].detail.contains("only in left"));
        assert!(diffs[1].detail.contains("only in right"));
    }

    #[test]
    fn key_order_does_not_diff() {
        let a = Json::obj(vec![
            ("x".into(), Json::Num(1.0)),
            ("y".into(), Json::Num(2.0)),
        ]);
        let b = Json::obj(vec![
            ("y".into(), Json::Num(2.0)),
            ("x".into(), Json::Num(1.0)),
        ]);
        assert!(json_diff(&a, &b).is_empty());
    }
}
