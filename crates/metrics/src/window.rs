//! Windowed time-series: epoch-bucketed metrics over power-of-two cycle
//! windows.
//!
//! Aggregate counters answer "how many over the whole run"; windows answer
//! "when". A [`WindowSeries`] buckets the cycle axis into epochs of
//! `1 << log2` cycles, so bucketing is a shift (no division on the hot
//! path) and window boundaries line up across every signal recorded with
//! the same `log2`. Two kinds exist:
//!
//! * **Sum** windows accumulate event counts (flits injected, flits
//!   ejected, credit stalls). Summing the values of a Sum window
//!   reproduces the matching aggregate counter exactly — the consistency
//!   contract `telemetry_report --quick` enforces.
//! * **Gauge** windows hold one sampled or derived value per window
//!   (latency quantiles, mean buffer occupancy). They have no aggregate
//!   identity; merging registries requires gauge-window keys to be
//!   disjoint, like series.
//!
//! Windows ride the existing [`crate::Recorder`] indirection, so with the
//! `NullRecorder` every recording site still compiles away to nothing.

use crate::json::Json;

/// How values in a [`WindowSeries`] combine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowKind {
    /// Per-window event counts; element-wise additive across shard merges
    /// and summable back into the aggregate counter of the same name.
    Sum,
    /// One sampled/derived value per window; not additive.
    Gauge,
}

impl WindowKind {
    /// Stable label used in JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            WindowKind::Sum => "sum",
            WindowKind::Gauge => "gauge",
        }
    }
}

/// An epoch-bucketed time series. Window `w` covers cycles
/// `[w << log2, (w + 1) << log2)`; `values[i]` belongs to window
/// `start + i`. Gaps between recordings are zero-filled so the time axis
/// stays dense and exports stay self-describing.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowSeries {
    /// Window length exponent: each window spans `1 << log2` cycles.
    pub log2: u32,
    /// Absolute index of the first recorded window.
    pub start: u64,
    /// Whether values add (Sum) or stand alone (Gauge).
    pub kind: WindowKind,
    /// One value per window, dense from `start`.
    pub values: Vec<f64>,
}

impl WindowSeries {
    /// Creates an empty series anchored at window `start`.
    pub fn new(log2: u32, start: u64, kind: WindowKind) -> Self {
        WindowSeries {
            log2,
            start,
            kind,
            values: Vec::new(),
        }
    }

    /// The window length in cycles.
    pub fn window_cycles(&self) -> u64 {
        1u64 << self.log2
    }

    /// The first cycle of window-index `w` (an absolute index, not an
    /// offset into `values`).
    pub fn window_start_cycle(&self, w: u64) -> u64 {
        w << self.log2
    }

    /// Mutable slot for absolute window `w`, zero-filling any gap.
    /// Windows are recorded in nondecreasing order; `w` may not precede
    /// `start`.
    fn slot(&mut self, w: u64) -> &mut f64 {
        assert!(
            w >= self.start,
            "window {w} precedes series start {}",
            self.start
        );
        let idx = (w - self.start) as usize;
        if idx >= self.values.len() {
            self.values.resize(idx + 1, 0.0);
        }
        &mut self.values[idx]
    }

    /// Adds `delta` into absolute window `w` (Sum semantics).
    pub fn add(&mut self, w: u64, delta: f64) {
        *self.slot(w) += delta;
    }

    /// Sets the value of absolute window `w` (Gauge semantics).
    pub fn set(&mut self, w: u64, value: f64) {
        *self.slot(w) = value;
    }

    /// Sum of all recorded values. For Sum windows this equals the
    /// aggregate counter of the same name.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Element-wise merge of another series recorded on the same window
    /// grid, aligning by absolute window index. Only meaningful for Sum
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics if the two series disagree on `log2` or `kind`.
    pub fn merge_add(&mut self, other: &WindowSeries) {
        assert_eq!(self.log2, other.log2, "window merge: log2 mismatch");
        assert_eq!(self.kind, other.kind, "window merge: kind mismatch");
        if other.start < self.start {
            let shift = (self.start - other.start) as usize;
            let mut values = vec![0.0; shift];
            values.append(&mut self.values);
            self.values = values;
            self.start = other.start;
        }
        for (i, v) in other.values.iter().enumerate() {
            self.add(other.start + i as u64, *v);
        }
    }

    /// Renders the series as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::str(self.kind.label())),
            ("log2".into(), Json::Num(self.log2 as f64)),
            ("start".into(), Json::Num(self.start as f64)),
            (
                "values".into(),
                Json::Arr(self.values.iter().map(|&v| Json::Num(v)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_windows_zero_fill_gaps() {
        let mut w = WindowSeries::new(6, 2, WindowKind::Sum);
        w.add(2, 3.0);
        w.add(5, 1.0);
        assert_eq!(w.values, vec![3.0, 0.0, 0.0, 1.0]);
        assert_eq!(w.total(), 4.0);
        assert_eq!(w.window_cycles(), 64);
        assert_eq!(w.window_start_cycle(5), 320);
    }

    #[test]
    #[should_panic(expected = "precedes series start")]
    fn windows_reject_out_of_order_recording() {
        let mut w = WindowSeries::new(4, 8, WindowKind::Sum);
        w.add(7, 1.0);
    }

    #[test]
    fn merge_add_aligns_on_absolute_index() {
        let mut a = WindowSeries::new(4, 3, WindowKind::Sum);
        a.add(3, 1.0);
        a.add(4, 2.0);
        let mut b = WindowSeries::new(4, 1, WindowKind::Sum);
        b.add(1, 10.0);
        b.add(4, 20.0);
        b.add(6, 30.0);
        a.merge_add(&b);
        assert_eq!(a.start, 1);
        assert_eq!(a.values, vec![10.0, 0.0, 1.0, 22.0, 0.0, 30.0]);
    }

    #[test]
    fn merge_add_with_empty_series_is_identity() {
        // An empty other leaves the target untouched; an empty target
        // absorbs the other wholesale (start re-anchors to the earlier
        // epoch, values copy through).
        let mut a = WindowSeries::new(4, 3, WindowKind::Sum);
        a.add(3, 1.0);
        a.add(5, 2.0);
        let before = a.clone();
        a.merge_add(&WindowSeries::new(4, 9, WindowKind::Sum));
        assert_eq!(a, before, "merging an empty series must change nothing");

        let mut empty = WindowSeries::new(4, 9, WindowKind::Sum);
        empty.merge_add(&before);
        assert_eq!(empty.start, 3);
        // Re-anchoring zero-fills up to the empty target's old anchor (9),
        // so the dense form carries a zero tail for windows 6..9.
        assert_eq!(empty.values, vec![1.0, 0.0, 2.0, 0.0, 0.0, 0.0]);
        assert_eq!(empty.total(), before.total());
    }

    #[test]
    fn merge_add_with_misaligned_epochs_prepends_zeros() {
        // The other series starts several epochs earlier: the target
        // re-anchors, zero-filling the prefix it never observed, and the
        // overlap still adds element-wise on absolute indices.
        let mut a = WindowSeries::new(3, 10, WindowKind::Sum);
        a.add(10, 5.0);
        let mut b = WindowSeries::new(3, 6, WindowKind::Sum);
        b.add(6, 1.0);
        b.add(10, 2.0);
        a.merge_add(&b);
        assert_eq!(a.start, 6);
        assert_eq!(a.values, vec![1.0, 0.0, 0.0, 0.0, 7.0]);
        // Merge is order-independent on totals.
        let mut c = WindowSeries::new(3, 6, WindowKind::Sum);
        c.add(6, 1.0);
        c.add(10, 2.0);
        let mut d = WindowSeries::new(3, 10, WindowKind::Sum);
        d.add(10, 5.0);
        c.merge_add(&d);
        assert_eq!(a, c, "merge must commute on the dense form");
    }

    #[test]
    fn merge_add_folds_final_partial_window_past_the_tail() {
        // A shard that ran longer contributes a final, partially-filled
        // window beyond the target's tail: the target extends, keeps the
        // zero-filled gap dense, and the window-sum == aggregate identity
        // survives the merge.
        let mut a = WindowSeries::new(2, 0, WindowKind::Sum);
        a.add(0, 4.0);
        a.add(1, 4.0);
        let mut b = WindowSeries::new(2, 0, WindowKind::Sum);
        b.add(0, 1.0);
        b.add(3, 0.5); // final partial window: fewer events than a full epoch
        let total_before = a.total() + b.total();
        a.merge_add(&b);
        assert_eq!(a.values, vec![5.0, 4.0, 0.0, 0.5]);
        assert_eq!(a.total(), total_before);
        assert_eq!(a.values.len(), 4, "tail window must extend the series");
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn merge_add_rejects_mismatched_kinds() {
        let mut a = WindowSeries::new(4, 0, WindowKind::Sum);
        let b = WindowSeries::new(4, 0, WindowKind::Gauge);
        a.merge_add(&b);
    }

    #[test]
    #[should_panic(expected = "log2 mismatch")]
    fn merge_add_rejects_mismatched_grids() {
        let mut a = WindowSeries::new(4, 0, WindowKind::Sum);
        let b = WindowSeries::new(5, 0, WindowKind::Sum);
        a.merge_add(&b);
    }

    #[test]
    fn gauge_windows_overwrite() {
        let mut w = WindowSeries::new(8, 0, WindowKind::Gauge);
        w.set(0, 1.5);
        w.set(0, 2.5);
        w.set(2, 9.0);
        assert_eq!(w.values, vec![2.5, 0.0, 9.0]);
    }

    #[test]
    fn json_shape_is_self_describing() {
        let mut w = WindowSeries::new(7, 1, WindowKind::Sum);
        w.add(1, 4.0);
        let doc = w.to_json();
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("sum"));
        assert_eq!(doc.get("log2").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("start").and_then(Json::as_u64), Some(1));
    }
}
