//! # noc-engine
//!
//! Cycle-driven simulation kernel for the flit-reservation flow-control
//! reproduction (Peh & Dally, HPCA 2000).
//!
//! Every higher-level crate in this workspace builds on four small pieces
//! provided here:
//!
//! * [`Cycle`] — the shared notion of simulation time;
//! * [`Rng`] — a deterministic xoshiro256\*\* generator, so whole
//!   experiments are bit-reproducible from a single seed;
//! * [`stats`] — the estimators behind every number the paper reports
//!   (mean latency with 95% confidence intervals, histograms,
//!   time-weighted occupancies);
//! * [`warmup`] and [`sweep`] — the measurement methodology: warm up until
//!   queue lengths stabilize, then sweep offered load across threads;
//! * [`trace`] — cycle-stamped event tracing behind a zero-cost
//!   [`trace::TraceSink`], with an online [`trace::InvariantChecker`];
//! * [`propcheck`] — a tiny dependency-free property-testing harness
//!   over [`Rng`], used by the randomized table tests.
//!
//! # Examples
//!
//! ```
//! use noc_engine::{Cycle, Rng, stats::RunningStats};
//!
//! let mut rng = Rng::from_seed(2000);
//! let mut latency = RunningStats::new();
//! let start = Cycle::ZERO;
//! for _ in 0..100 {
//!     let arrival = start + 27 + rng.below(6);
//!     latency.record((arrival - start) as f64);
//! }
//! assert!(latency.mean() >= 27.0);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

mod cycle;
pub mod pool;
pub mod propcheck;
pub mod rng;
pub mod stats;
pub mod sweep;
pub mod trace;
pub mod warmup;

pub use cycle::Cycle;
pub use rng::Rng;
