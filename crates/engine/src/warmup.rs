//! Warm-up detection.
//!
//! The paper runs "a warm-up phase of a minimum of 10,000 cycles till
//! average queue lengths have stabilized" before opening the measurement
//! window. [`WarmupDetector`] reproduces that policy: it observes a scalar
//! signal (average queue length) sampled periodically and declares the
//! system warm once a minimum duration has elapsed *and* the relative
//! change between two consecutive windowed means falls below a tolerance.
//! A hard cap bounds the wait so that saturated (non-stabilizing) loads
//! still terminate — at saturation the network never stabilizes, and the
//! measurement then simply records the divergent latencies the paper's
//! latency-throughput curves show as the vertical asymptote.

use crate::stats::WindowedMean;
use crate::Cycle;

/// Policy knobs for [`WarmupDetector`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarmupConfig {
    /// Never declare warm before this many cycles (paper: 10,000).
    pub min_cycles: u64,
    /// Always declare warm after this many cycles, even if the signal has
    /// not stabilized (saturated loads never do).
    pub max_cycles: u64,
    /// Number of samples in each comparison window.
    pub window: usize,
    /// Relative difference between consecutive window means below which
    /// the signal counts as stable.
    pub tolerance: f64,
}

impl Default for WarmupConfig {
    fn default() -> Self {
        WarmupConfig {
            min_cycles: 10_000,
            max_cycles: 50_000,
            window: 16,
            tolerance: 0.05,
        }
    }
}

/// Detects when a sampled signal (e.g. mean queue length) has stabilized.
///
/// # Examples
///
/// ```
/// use noc_engine::warmup::{WarmupConfig, WarmupDetector};
/// use noc_engine::Cycle;
///
/// let cfg = WarmupConfig { min_cycles: 100, max_cycles: 1000, window: 4, tolerance: 0.05 };
/// let mut det = WarmupDetector::new(cfg);
/// let mut warm_at = None;
/// for t in (0..2000u64).step_by(10) {
///     // A signal that has converged to 5.0:
///     if det.observe(Cycle::new(t), 5.0) {
///         warm_at = Some(t);
///         break;
///     }
/// }
/// let t = warm_at.expect("signal should stabilize");
/// assert!(t >= 100 && t < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct WarmupDetector {
    config: WarmupConfig,
    current: WindowedMean,
    previous: Option<f64>,
    samples_in_window: usize,
    warm: bool,
}

impl WarmupDetector {
    /// Creates a detector with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `max_cycles < min_cycles`.
    pub fn new(config: WarmupConfig) -> Self {
        assert!(
            config.max_cycles >= config.min_cycles,
            "max_cycles must be at least min_cycles"
        );
        WarmupDetector {
            current: WindowedMean::new(config.window),
            previous: None,
            samples_in_window: 0,
            config,
            warm: false,
        }
    }

    /// Feeds one sample of the signal at time `now`; returns `true` once
    /// the system is considered warm (and keeps returning `true` after).
    pub fn observe(&mut self, now: Cycle, signal: f64) -> bool {
        if self.warm {
            return true;
        }
        if now.raw() >= self.config.max_cycles {
            self.warm = true;
            return true;
        }
        self.current.record(signal);
        self.samples_in_window += 1;
        if self.samples_in_window >= self.config.window {
            self.samples_in_window = 0;
            let mean = self.current.mean().unwrap_or(0.0);
            if let Some(prev) = self.previous {
                let scale = prev.abs().max(1e-9);
                let rel = (mean - prev).abs() / scale;
                if rel <= self.config.tolerance && now.raw() >= self.config.min_cycles {
                    self.warm = true;
                }
            }
            self.previous = Some(mean);
        }
        self.warm
    }

    /// Whether the detector has already declared warm.
    pub fn is_warm(&self) -> bool {
        self.warm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WarmupConfig {
        WarmupConfig {
            min_cycles: 100,
            max_cycles: 10_000,
            window: 4,
            tolerance: 0.05,
        }
    }

    #[test]
    fn stable_signal_warms_after_min_cycles() {
        let mut det = WarmupDetector::new(cfg());
        let mut warm_at = None;
        for t in (0..10_000u64).step_by(10) {
            if det.observe(Cycle::new(t), 3.0) {
                warm_at = Some(t);
                break;
            }
        }
        let t = warm_at.unwrap();
        assert!(t >= 100, "warmed too early at {t}");
        assert!(t < 500, "warmed too late at {t}");
    }

    #[test]
    fn growing_signal_waits_for_cap() {
        let mut det = WarmupDetector::new(cfg());
        let mut warm_at = None;
        for (i, t) in (0..20_000u64).step_by(10).enumerate() {
            // Queue growing geometrically: the relative change per window
            // stays far above the tolerance, so only the cap fires.
            if det.observe(Cycle::new(t), 1.25f64.powi(i as i32).min(1e300)) {
                warm_at = Some(t);
                break;
            }
        }
        assert_eq!(warm_at, Some(10_000));
    }

    #[test]
    fn stays_warm_once_warm() {
        let mut det = WarmupDetector::new(cfg());
        for t in (0..10_000u64).step_by(10) {
            if det.observe(Cycle::new(t), 1.0) {
                break;
            }
        }
        assert!(det.is_warm());
        // Even a wild signal no longer changes the verdict.
        assert!(det.observe(Cycle::new(9_999), 1e9));
    }

    #[test]
    #[should_panic(expected = "max_cycles must be at least min_cycles")]
    fn invalid_config_panics() {
        WarmupDetector::new(WarmupConfig {
            min_cycles: 10,
            max_cycles: 5,
            window: 2,
            tolerance: 0.1,
        });
    }

    #[test]
    fn default_config_matches_paper_minimum() {
        assert_eq!(WarmupConfig::default().min_cycles, 10_000);
    }
}
