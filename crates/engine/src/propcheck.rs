//! A minimal, dependency-free property-testing harness.
//!
//! The randomized table tests need only a sliver of what the big
//! property-testing crates offer: deterministic generation of integers,
//! booleans, tuples and vectors, a case loop, and a useful failure
//! report. This module provides exactly that on top of the repo's own
//! [`Rng`], so the tests run offline and reproduce bit-for-bit.
//!
//! There is no shrinking: when a case fails, the harness prints the case
//! index, the seed and the generated input (which replays the failure
//! exactly via [`check_seeded`]), then re-raises the original panic.
//!
//! # Examples
//!
//! ```
//! use noc_engine::propcheck::{check, vec_of};
//!
//! check(32, (1u64..10, vec_of(0u8..4, 0..6)), |(scale, digits)| {
//!     let sum: u64 = digits.iter().map(|&d| d as u64).sum();
//!     assert!(sum * scale <= 3 * 6 * 10);
//! });
//! ```

use crate::Rng;
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// A deterministic generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut Rng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy for an arbitrary `bool`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut Rng) -> bool {
        rng.below(2) == 1
    }
}

/// Vectors of `element` values with a length drawn from `len`.
pub fn vec_of<S: Strategy>(element: S, len: Range<usize>) -> VecOf<S> {
    VecOf { element, len }
}

/// See [`vec_of`].
#[derive(Clone, Debug)]
pub struct VecOf<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Runs `test` against `cases` inputs drawn from `strategy` with a
/// fixed default seed.
///
/// # Panics
///
/// Re-raises the first failing case's panic, after printing the case
/// index, seed and generated input.
pub fn check<S>(cases: u64, strategy: S, test: impl Fn(S::Value))
where
    S: Strategy,
    S::Value: Debug,
{
    check_seeded(0x5EED_CA5E, cases, strategy, test);
}

/// [`check`] with an explicit seed, for replaying a reported failure.
///
/// # Panics
///
/// Re-raises the first failing case's panic.
pub fn check_seeded<S>(seed: u64, cases: u64, strategy: S, test: impl Fn(S::Value))
where
    S: Strategy,
    S::Value: Debug,
{
    let root = Rng::from_seed(seed);
    for case in 0..cases {
        let mut rng = root.fork(case);
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        if let Err(cause) = catch_unwind(AssertUnwindSafe(|| test(value))) {
            eprintln!(
                "property failed on case {case} of {cases} (seed {seed:#x})\n  input: {shown}"
            );
            resume_unwind(cause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        check(200, (3u8..7, 10u64..11, 0usize..5), |(a, b, c)| {
            assert!((3..7).contains(&a));
            assert_eq!(b, 10);
            assert!(c < 5);
        });
    }

    #[test]
    fn vectors_respect_the_length_range() {
        check(100, vec_of(0u32..100, 2..9), |v| {
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        });
    }

    #[test]
    fn bools_take_both_values() {
        let mut seen = [false, false];
        let root = Rng::from_seed(1);
        for case in 0..64 {
            seen[AnyBool.generate(&mut root.fork(case)) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn same_seed_replays_the_same_inputs() {
        let draw = |seed| {
            let out = std::cell::RefCell::new(Vec::new());
            check_seeded(seed, 20, vec_of(0u64..1000, 1..10), |v| {
                out.borrow_mut().push(v)
            });
            out.into_inner()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    #[should_panic(expected = "odd value generated")]
    fn failures_resume_with_the_original_panic() {
        check(500, 0u64..100, |x| {
            assert!(x % 2 == 0, "odd value generated")
        });
    }

    #[test]
    #[should_panic(expected = "empty range strategy")]
    fn empty_range_is_rejected() {
        check(1, 5u8..5, |_| {});
    }
}
