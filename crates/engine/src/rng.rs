//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible across platforms and runs: every
//! arbitration decision, traffic destination and injection coin-flip is
//! drawn from a [`Rng`] seeded from the experiment configuration. We use
//! xoshiro256\*\* (Blackman & Vigna), a small, fast, well-studied generator,
//! seeded through SplitMix64 as its authors recommend. Implementing it here
//! (~60 lines) avoids an external dependency whose API or internals could
//! drift between versions and silently change experiment streams.

/// SplitMix64 step, used for seeding and for cheap hash-like mixing.
///
/// # Examples
///
/// ```
/// let (next_state, value) = noc_engine::rng::splitmix64(0);
/// assert_ne!(value, 0);
/// assert_ne!(next_state, 0);
/// ```
#[inline]
pub fn splitmix64(state: u64) -> (u64, u64) {
    let state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (state, z ^ (z >> 31))
}

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use noc_engine::Rng;
///
/// let mut rng = Rng::from_seed(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// // Same seed, same stream:
/// assert_eq!(Rng::from_seed(42).next_u64(), a);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            let (next, out) = splitmix64(sm);
            sm = next;
            *slot = out;
        }
        // xoshiro's state must not be all-zero; SplitMix64 cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Derives an independent child generator, e.g. one per router or per
    /// traffic source, so that component streams do not interleave.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_engine::Rng;
    /// let mut root = Rng::from_seed(7);
    /// let mut a = root.fork(0);
    /// let mut b = root.fork(1);
    /// assert_ne!(a.next_u64(), b.next_u64());
    /// ```
    pub fn fork(&self, stream: u64) -> Rng {
        // Mix the current state with the stream id through SplitMix64.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let mut s = [0u64; 4];
        for slot in &mut s {
            let (next, out) = splitmix64(sm);
            sm = next;
            *slot = out;
        }
        Rng { s }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below requires a non-zero bound");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)` with 53-bit
    /// precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the xoshiro256** authors' C code, seeded with
    /// state {1, 2, 3, 4}.
    #[test]
    fn matches_reference_vector() {
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let expected: [u64; 8] = [
            11520,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
            607988272756665600,
            16172922978634559625,
            8476171486693032832,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs of SplitMix64 seeded with 1234567.
        let mut state = 1234567u64;
        let mut outs = Vec::new();
        for _ in 0..3 {
            let (next, out) = splitmix64(state);
            state = next;
            outs.push(out);
        }
        assert_eq!(
            outs,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = Rng::from_seed(99);
        let mut b = Rng::from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(Rng::from_seed(1).next_u64(), Rng::from_seed(2).next_u64());
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let root = Rng::from_seed(5);
        let mut a1 = root.fork(10);
        let mut a2 = root.fork(10);
        let mut b = root.fork(11);
        let va = a1.next_u64();
        assert_eq!(va, a2.next_u64());
        assert_ne!(va, b.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers_values() {
        let mut rng = Rng::from_seed(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "non-zero bound")]
    fn below_zero_bound_panics() {
        Rng::from_seed(0).below(0);
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = Rng::from_seed(8);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::from_seed(8);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0 + 1e-9));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = Rng::from_seed(21);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} too far from 0.3");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::from_seed(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = Rng::from_seed(17);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items)));
        }
    }
}
