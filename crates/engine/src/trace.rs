//! Cycle-level event tracing and online invariant checking.
//!
//! Every router and the network harness can emit a stream of
//! cycle-stamped [`TraceEvent`]s describing what the hardware did:
//! injections, reservations, buffer allocations, channel grants, flit
//! transfers and deliveries. The stream is consumed by a [`TraceSink`],
//! chosen statically so that *disabled* tracing compiles away:
//!
//! * [`NullSink`] (the default everywhere) has `ENABLED = false`, so
//!   every emit site folds to nothing — the traced and untraced router
//!   are the same machine code;
//! * [`VecSink`] records everything, for golden/differential tests;
//! * [`RingSink`] keeps the last *N* events, for flight-recorder style
//!   debugging of long runs;
//! * [`InvariantChecker`] replays the stream online and cross-checks the
//!   conservation and reservation-consistency invariants of the
//!   simulated flow control;
//! * [`SharedSink`] lets many routers in one network feed a single sink.
//!
//! Events carry raw integer identifiers (`u16` nodes, `u8` ports, `u64`
//! packet ids) because this crate sits at the bottom of the workspace
//! and cannot name the typed ids of `noc-topology`/`noc-traffic`; the
//! `noc-flow` crate layers a typed emit API on top.
//!
//! # Examples
//!
//! ```
//! use noc_engine::trace::{TraceEvent, TraceKind, TraceSink, VecSink};
//! use noc_engine::Cycle;
//!
//! let mut sink = VecSink::new();
//! sink.record(|| TraceEvent {
//!     cycle: Cycle::new(3),
//!     node: 7,
//!     kind: TraceKind::FlitInjected { packet: 42, seq: 0 },
//! });
//! assert_eq!(sink.events().len(), 1);
//! ```

use crate::Cycle;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;

/// One cycle-stamped event observed at one router (or the network
/// harness acting for that router's node).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Simulation time at which the event happened.
    pub cycle: Cycle,
    /// Raw id of the node the event happened at.
    pub node: u16,
    /// What happened.
    pub kind: TraceKind,
}

/// The kind of a [`TraceEvent`], with raw-integer payloads.
///
/// Port numbers are `Port::index()` values (0..5 on the mesh), virtual
/// channels and control lanes are small indices, packet ids are the raw
/// `PacketId` and `seq` is the flit's position within its packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A packet entered the source queue at its origin node.
    PacketInjected {
        /// Raw packet id.
        packet: u64,
        /// Source node.
        src: u16,
        /// Destination node.
        dest: u16,
        /// Packet length in flits.
        length: u32,
    },
    /// A data flit left the network interface into the router proper.
    FlitInjected {
        /// Raw packet id.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A control flit was sent on an outgoing control wire (FR only).
    ControlSent {
        /// Output port the control flit left on.
        out_port: u8,
        /// Downstream control VC carrying the flit.
        vc: u8,
        /// Packet the control flit reserves for.
        packet: u64,
    },
    /// A control flit suffered a wire error and will be retransmitted.
    ControlRetried {
        /// Output port the control flit was on.
        out_port: u8,
    },
    /// A reservation was written into the input/output tables (FR only):
    /// buffer from `arrival` and channel cycle `departure` on `out_port`.
    ReservationMade {
        /// Packet being reserved for.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
        /// Input port the data flit will arrive on.
        in_port: u8,
        /// Output port the data flit will depart on.
        out_port: u8,
        /// Scheduled arrival cycle.
        arrival: u64,
        /// Scheduled departure cycle.
        departure: u64,
    },
    /// One cycle of an output channel's bandwidth was reserved.
    ChannelGrant {
        /// Output port whose channel was granted.
        out_port: u8,
        /// The granted departure cycle.
        at: u64,
    },
    /// A data flit was written into a buffer.
    BufferAlloc {
        /// Input port owning the buffer pool.
        port: u8,
        /// Buffer slot index within the pool.
        buffer: u16,
        /// Packet occupying the slot.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A buffer slot was released.
    BufferFree {
        /// Input port owning the buffer pool.
        port: u8,
        /// Buffer slot index within the pool.
        buffer: u16,
        /// Packet that occupied the slot.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A data flit departed on a reserved channel cycle (FR only): it
    /// must consume a matching [`TraceKind::ChannelGrant`].
    DataSent {
        /// Output port the flit left on.
        out_port: u8,
        /// Packet the flit belongs to.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A data flit departed on a virtual channel (VC baseline; no
    /// advance reservation exists to consume).
    VcDataSent {
        /// Output port the flit left on.
        out_port: u8,
        /// Virtual channel carrying the flit.
        vc: u8,
        /// Packet the flit belongs to.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A flit entered a per-VC input queue (VC baseline).
    QueueEnq {
        /// Input port of the queue.
        port: u8,
        /// Virtual channel of the queue.
        vc: u8,
        /// Packet the flit belongs to.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A flit left a per-VC input queue; must match the queue's head.
    QueueDeq {
        /// Input port of the queue.
        port: u8,
        /// Virtual channel of the queue.
        vc: u8,
        /// Packet the flit belongs to.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A credit was returned upstream.
    CreditSent {
        /// Port the credit left on (towards the upstream router).
        port: u8,
        /// Credit class: the virtual channel (VC) or 0 (FR).
        class: u8,
    },
    /// A data flit reached its destination and left the network.
    FlitEjected {
        /// Packet the flit belongs to.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// The last flit of a packet was ejected; the packet is complete.
    PacketDelivered {
        /// The completed packet.
        packet: u64,
        /// Head-injection-to-tail-ejection latency in cycles.
        latency: u64,
    },
    /// A head flit spent this cycle waiting for a downstream virtual
    /// channel grant (VC baseline; emitted by the stall-provenance hook).
    VcAllocStall {
        /// Packet the blocked head flit belongs to.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A routed, VC-holding flit spent this cycle blocked on downstream
    /// credit — the buffer-turnaround wait the paper's reservation scheme
    /// eliminates (emitted by the stall-provenance hook).
    CreditStall {
        /// Packet the blocked flit belongs to.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A flit that held route, VC and credit spent this cycle losing (or
    /// not being nominated for) switch arbitration (emitted by the
    /// stall-provenance hook).
    SwitchStall {
        /// Packet the blocked flit belongs to.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A control flit spent this cycle blocked in a control input queue
    /// (FR only: control-VC conflict, exhausted control credit or a
    /// reservation-table miss; emitted by the stall-provenance hook).
    ControlStall {
        /// Packet the blocked control flit reserves for.
        packet: u64,
    },
    /// A transient link fault corrupted a data flit in transit: its CRC
    /// bit was cleared but the flit keeps travelling and consuming its
    /// reserved resources (fault injection).
    DataCorrupted {
        /// Packet the corrupted flit belongs to.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// A transient link fault dropped a control flit; the link-level
    /// repair re-drives it after the repair timeout, re-issuing the
    /// bookings it carries instead of stalling forever (fault injection).
    ControlDropped {
        /// Output port whose control wire dropped the flit.
        out_port: u8,
    },
    /// The destination network interface discarded a CRC-failed data
    /// flit instead of ejecting it, and will NACK the source.
    CorruptDiscarded {
        /// Packet the discarded flit belongs to.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// The destination network interface discarded a retransmitted copy
    /// of a flit it had already accepted (exactly-once filtering).
    DuplicateDiscarded {
        /// Packet the discarded copy belongs to.
        packet: u64,
        /// Flit sequence number within the packet.
        seq: u32,
    },
    /// The destination network interface issued a NACK towards the
    /// packet's source after discarding a corrupted flit.
    NackIssued {
        /// Packet being NACKed.
        packet: u64,
    },
    /// The destination network interface acknowledged the complete,
    /// exactly-once delivery of a packet; the source retires its
    /// retransmit-buffer entry when the ACK lands.
    AckIssued {
        /// Packet being acknowledged.
        packet: u64,
    },
    /// The source network interface re-injected a packet from its
    /// retransmit buffer (NACK- or timeout-triggered).
    PacketRetransmitted {
        /// Packet being re-sent.
        packet: u64,
        /// Retransmission attempt number (1 for the first re-send).
        attempt: u32,
    },
    /// A retransmit timer fired with the packet still unacknowledged;
    /// the follow-up copy is traced as [`TraceKind::PacketRetransmitted`].
    RetransmitTimeout {
        /// Packet whose timer expired.
        packet: u64,
    },
    /// A permanently failed outgoing link was masked out of this node's
    /// routing function; new traffic detours around it.
    LinkMasked {
        /// Output port of the dead link.
        port: u8,
    },
    /// A pipeline-stage contract was violated inside a router (a grant
    /// without a matching request, two traversals of one output in one
    /// cycle, ...). Emitted by the stage-contract checker the routers
    /// can enable; the invariant checker treats every occurrence as a
    /// violation, so contract breaches fail `assert_clean`.
    StageContractViolation {
        /// Dense code identifying the broken contract (see the
        /// `pipeline::contract` module of `noc-flow`).
        code: u8,
    },
}

/// A consumer of [`TraceEvent`]s.
///
/// The associated `ENABLED` constant is the whole trick: emit sites are
/// written as `sink.record(|| event)`, and when `ENABLED` is `false`
/// (the [`NullSink`] default) the closure is never built, so the
/// compiler deletes the site entirely.
pub trait TraceSink {
    /// Whether emit sites should construct and deliver events at all.
    const ENABLED: bool = true;

    /// Delivers one event. Only called when [`Self::ENABLED`] is true
    /// (via [`TraceSink::record`]); direct calls always deliver.
    fn emit(&mut self, event: TraceEvent);

    /// Builds and delivers an event only if this sink is enabled.
    #[inline(always)]
    fn record(&mut self, event: impl FnOnce() -> TraceEvent) {
        if Self::ENABLED {
            self.emit(event());
        }
    }
}

/// The default sink: tracing disabled, zero cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _event: TraceEvent) {}
}

/// Records every event in order. The workhorse of the determinism and
/// differential tests: two runs are identical iff their `VecSink`
/// contents are equal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// All events recorded so far, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Discards all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl TraceSink for VecSink {
    fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// A bounded flight recorder: keeps the most recent `capacity` events
/// and counts how many older ones were dropped.
#[derive(Clone, Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            capacity,
            events: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// The retained (most recent) events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events (at most the capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// Feeds every event to two sinks in order: `a` first, then `b`.
///
/// The composition is enabled if either half is, and each half still
/// honours its own `ENABLED` flag — so `TeeSink<VecSink, RingSink>` arms
/// a flight recorder *next to* a full recording without touching the
/// emit sites, which is how the zero-perturbation proof compares a
/// ring-armed run's full stream against the golden fingerprints.
#[derive(Clone, Debug, Default)]
pub struct TeeSink<A, B> {
    /// The first sink; receives each event before `b`.
    pub a: A,
    /// The second sink.
    pub b: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Combines two sinks.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn emit(&mut self, event: TraceEvent) {
        if A::ENABLED {
            self.a.emit(event);
        }
        if B::ENABLED {
            self.b.emit(event);
        }
    }
}

/// A cloneable handle to one shared sink, so every router in a network
/// can feed the same [`InvariantChecker`] or [`VecSink`].
///
/// Networks are built and stepped on a single thread (the sweep
/// parallelism is across networks, not within one), so a plain
/// `Rc<RefCell<..>>` suffices.
pub struct SharedSink<S>(Rc<RefCell<S>>);

impl<S> SharedSink<S> {
    /// Wraps `sink` in a shared handle.
    pub fn new(sink: S) -> Self {
        SharedSink(Rc::new(RefCell::new(sink)))
    }

    /// Runs `f` with shared access to the inner sink.
    pub fn with<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Runs `f` with exclusive access to the inner sink.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }

    /// Unwraps the inner sink.
    ///
    /// # Panics
    ///
    /// Panics if other handles to the same sink are still alive.
    pub fn into_inner(self) -> S {
        Rc::try_unwrap(self.0)
            .map(RefCell::into_inner)
            .unwrap_or_else(|_| panic!("SharedSink still has other live handles"))
    }
}

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink(Rc::clone(&self.0))
    }
}

impl<S: fmt::Debug> fmt::Debug for SharedSink<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SharedSink").field(&self.0.borrow()).finish()
    }
}

impl<S: TraceSink> TraceSink for SharedSink<S> {
    const ENABLED: bool = S::ENABLED;

    fn emit(&mut self, event: TraceEvent) {
        self.0.borrow_mut().emit(event);
    }
}

/// Cap on the number of violation messages the checker keeps verbatim;
/// further violations are still counted.
const MAX_KEPT_VIOLATIONS: usize = 32;

/// An online auditor of the event stream.
///
/// Replays events as they are emitted and cross-checks the flow-control
/// invariants that both routers must uphold:
///
/// * **conservation** — a buffer slot is allocated at most once until
///   freed, frees match their allocs, and every flit is ejected at most
///   once (and exactly `length` flits per delivered packet);
/// * **reservation consistency** — an output channel cycle is granted
///   at most once, and every FR data-flit departure consumes a grant
///   made for exactly that `(node, port, cycle)` — i.e. no data flit
///   ever uses unreserved bandwidth;
/// * **FIFO order** — VC per-virtual-channel queues pop in push order;
/// * **monotone time** — each node's events are stamped in
///   non-decreasing cycle order.
///
/// Violations are collected (not panicked) so a test can run a whole
/// simulation and then [`InvariantChecker::assert_clean`].
#[derive(Clone, Debug, Default)]
pub struct InvariantChecker {
    events_seen: u64,
    violations: Vec<String>,
    violation_count: u64,
    last_cycle: HashMap<u16, u64>,
    /// `(node, port, buffer)` → `(packet, seq)` currently held.
    occupied: HashMap<(u16, u8, u16), (u64, u32)>,
    /// Outstanding channel grants `(node, out_port, cycle)`.
    grants: HashSet<(u16, u8, u64)>,
    grants_made: u64,
    grants_consumed: u64,
    /// Packet id → declared length in flits.
    packet_length: HashMap<u64, u32>,
    /// Per-packet count of ejected flits.
    ejected_per_packet: HashMap<u64, u32>,
    ejected_flits: HashSet<(u64, u32)>,
    delivered_packets: HashSet<u64>,
    injected_flits: u64,
    /// Flit copies discarded at a destination NI (CRC failure or
    /// duplicate filtering); only nonzero under fault injection.
    discarded_flits: u64,
    /// Shadow of each VC input queue: `(node, port, vc)` → flits.
    fifos: HashMap<(u16, u8, u8), VecDeque<(u64, u32)>>,
}

impl InvariantChecker {
    /// Creates a checker with no history.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    /// Total events audited.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Total violations detected (may exceed the kept messages).
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }

    /// The first few violation messages, verbatim.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// True if no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violation_count == 0
    }

    /// Channel-bandwidth reservations that were made but never used by
    /// a data flit — wasted bandwidth, legal but worth watching.
    pub fn unused_grants(&self) -> u64 {
        self.grants_made - self.grants_consumed
    }

    /// Number of flits ejected so far.
    pub fn ejected_flits(&self) -> u64 {
        self.ejected_flits.len() as u64
    }

    /// Number of flits injected so far.
    pub fn injected_flits(&self) -> u64 {
        self.injected_flits
    }

    /// Number of flit copies discarded at destination NIs (corrupt or
    /// duplicate); zero unless fault injection is active.
    pub fn discarded_flits(&self) -> u64 {
        self.discarded_flits
    }

    /// Panics with the collected messages if any invariant was violated.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "{} invariant violation(s) after {} events; first {}:\n{}",
            self.violation_count,
            self.events_seen,
            self.violations.len(),
            self.violations.join("\n")
        );
    }

    /// Panics unless the network is fully drained: every injected flit
    /// ejected, every buffer freed, every VC queue empty. Call only
    /// after a run that is known to deliver all of its traffic.
    pub fn assert_drained(&self) {
        self.assert_clean();
        assert_eq!(
            self.injected_flits,
            self.ejected_flits.len() as u64,
            "flit conservation: {} injected but {} ejected",
            self.injected_flits,
            self.ejected_flits.len()
        );
        assert!(
            self.occupied.is_empty(),
            "{} buffer slot(s) still occupied after drain: {:?}",
            self.occupied.len(),
            self.occupied.iter().take(4).collect::<Vec<_>>()
        );
        let queued: usize = self.fifos.values().map(VecDeque::len).sum();
        assert_eq!(
            queued, 0,
            "{queued} flit(s) still sitting in VC queues after drain"
        );
    }

    /// The fault-tolerant drain check: every injected flit copy was
    /// either ejected exactly once or explicitly discarded (corrupt or
    /// duplicate), every buffer was freed and every VC queue emptied.
    /// With fault injection off this degrades to [`Self::assert_drained`]
    /// because `discarded_flits` stays zero.
    pub fn assert_drained_under_faults(&self) {
        self.assert_clean();
        assert_eq!(
            self.injected_flits,
            self.ejected_flits.len() as u64 + self.discarded_flits,
            "flit conservation under faults: {} copies injected but {} ejected + {} discarded",
            self.injected_flits,
            self.ejected_flits.len(),
            self.discarded_flits
        );
        assert!(
            self.occupied.is_empty(),
            "{} buffer slot(s) still occupied after drain: {:?}",
            self.occupied.len(),
            self.occupied.iter().take(4).collect::<Vec<_>>()
        );
        let queued: usize = self.fifos.values().map(VecDeque::len).sum();
        assert_eq!(
            queued, 0,
            "{queued} flit(s) still sitting in VC queues after drain"
        );
    }

    fn violate(&mut self, message: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_KEPT_VIOLATIONS {
            self.violations.push(message);
        }
    }
}

impl TraceSink for InvariantChecker {
    fn emit(&mut self, event: TraceEvent) {
        self.events_seen += 1;
        let TraceEvent { cycle, node, kind } = event;
        let now = cycle.raw();

        let last = self.last_cycle.entry(node).or_insert(now);
        if now < *last {
            let prev = *last;
            self.violate(format!(
                "node {node}: time ran backwards ({now} after {prev}) on {kind:?}"
            ));
        } else {
            *last = now;
        }

        match kind {
            TraceKind::PacketInjected { packet, length, .. } => {
                if self.packet_length.insert(packet, length).is_some() {
                    self.violate(format!(
                        "packet {packet} injected twice (node {node}, {cycle})"
                    ));
                }
            }
            TraceKind::FlitInjected { .. } => self.injected_flits += 1,
            TraceKind::ControlSent { .. } | TraceKind::ControlRetried { .. } => {}
            TraceKind::ReservationMade {
                packet,
                seq,
                arrival,
                departure,
                ..
            } => {
                if departure < arrival {
                    self.violate(format!(
                        "node {node}: reservation for {packet}.{seq} departs ({departure}) \
                         before it arrives ({arrival})"
                    ));
                }
                // `arrival < now` is legal: an early data flit parks in
                // the buffer pool before its control flit is processed,
                // and the reservation then records the actual (past)
                // arrival. Departures, however, cannot be in the past.
                if departure < now {
                    self.violate(format!(
                        "node {node}: reservation for {packet}.{seq} departs in the past \
                         ({departure} < {now})"
                    ));
                }
            }
            TraceKind::ChannelGrant { out_port, at } => {
                self.grants_made += 1;
                if at < now {
                    self.violate(format!(
                        "node {node} port {out_port}: channel granted in the past ({at} < {now})"
                    ));
                }
                if !self.grants.insert((node, out_port, at)) {
                    self.violate(format!(
                        "node {node} port {out_port}: channel cycle {at} granted twice"
                    ));
                }
            }
            TraceKind::BufferAlloc {
                port,
                buffer,
                packet,
                seq,
            } => {
                if let Some((p, s)) = self.occupied.insert((node, port, buffer), (packet, seq)) {
                    self.violate(format!(
                        "node {node} port {port} buffer {buffer}: alloc for {packet}.{seq} \
                         but still held by {p}.{s}"
                    ));
                }
            }
            TraceKind::BufferFree {
                port,
                buffer,
                packet,
                seq,
            } => match self.occupied.remove(&(node, port, buffer)) {
                None => self.violate(format!(
                    "node {node} port {port} buffer {buffer}: freed while empty \
                         (claimed {packet}.{seq})"
                )),
                Some((p, s)) if (p, s) != (packet, seq) => self.violate(format!(
                    "node {node} port {port} buffer {buffer}: freed as {packet}.{seq} \
                         but holds {p}.{s}"
                )),
                Some(_) => {}
            },
            TraceKind::DataSent {
                out_port,
                packet,
                seq,
            } => {
                if self.grants.remove(&(node, out_port, now)) {
                    self.grants_consumed += 1;
                } else {
                    self.violate(format!(
                        "node {node} port {out_port}: data flit {packet}.{seq} sent at \
                         {cycle} without a channel reservation"
                    ));
                }
            }
            TraceKind::VcDataSent { .. } => {}
            TraceKind::QueueEnq {
                port,
                vc,
                packet,
                seq,
            } => {
                self.fifos
                    .entry((node, port, vc))
                    .or_default()
                    .push_back((packet, seq));
            }
            TraceKind::QueueDeq {
                port,
                vc,
                packet,
                seq,
            } => match self.fifos.entry((node, port, vc)).or_default().pop_front() {
                None => self.violate(format!(
                    "node {node} port {port} vc {vc}: dequeue of {packet}.{seq} \
                         from an empty queue"
                )),
                Some((p, s)) if (p, s) != (packet, seq) => self.violate(format!(
                    "node {node} port {port} vc {vc}: dequeued {packet}.{seq} but \
                         head of queue is {p}.{s} (FIFO order broken)"
                )),
                Some(_) => {}
            },
            TraceKind::CreditSent { .. } => {}
            TraceKind::FlitEjected { packet, seq } => {
                if !self.ejected_flits.insert((packet, seq)) {
                    self.violate(format!(
                        "flit {packet}.{seq} ejected twice (node {node}, {cycle})"
                    ));
                }
                *self.ejected_per_packet.entry(packet).or_insert(0) += 1;
            }
            TraceKind::PacketDelivered { packet, .. } => {
                if !self.delivered_packets.insert(packet) {
                    self.violate(format!("packet {packet} delivered twice (node {node})"));
                }
                let got = self.ejected_per_packet.get(&packet).copied().unwrap_or(0);
                if let Some(&len) = self.packet_length.get(&packet) {
                    if got != len {
                        self.violate(format!(
                            "packet {packet} delivered after {got} of {len} flits ejected"
                        ));
                    }
                }
            }
            // Stall-provenance markers carry no state the checker tracks;
            // the monotone-time check above already covers them.
            TraceKind::VcAllocStall { .. }
            | TraceKind::CreditStall { .. }
            | TraceKind::SwitchStall { .. }
            | TraceKind::ControlStall { .. } => {}
            TraceKind::CorruptDiscarded { .. } => self.discarded_flits += 1,
            TraceKind::DuplicateDiscarded { packet, seq } => {
                self.discarded_flits += 1;
                // A duplicate discard asserts the destination already
                // accepted this flit; if it never was, the dedup filter
                // just dropped live traffic.
                if !self.ejected_flits.contains(&(packet, seq)) {
                    self.violate(format!(
                        "flit {packet}.{seq} discarded as duplicate but never ejected \
                         (node {node}, {cycle})"
                    ));
                }
            }
            TraceKind::PacketRetransmitted { packet, .. } => {
                if !self.packet_length.contains_key(&packet) {
                    self.violate(format!(
                        "packet {packet} retransmitted but never injected (node {node})"
                    ));
                }
            }
            // Fault-injection and reliability markers with no tracked
            // state; monotone time still applies.
            TraceKind::DataCorrupted { .. }
            | TraceKind::ControlDropped { .. }
            | TraceKind::NackIssued { .. }
            | TraceKind::AckIssued { .. }
            | TraceKind::RetransmitTimeout { .. }
            | TraceKind::LinkMasked { .. } => {}
            // A stage-contract breach is by definition an invariant
            // violation: the router's own checker found a grant or
            // traversal that its pipeline interfaces forbid.
            TraceKind::StageContractViolation { code } => {
                self.violate(format!(
                    "node {node}: stage contract violation (code {code}) at {cycle}"
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(cycle: u64, node: u16, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle: Cycle::new(cycle),
            node,
            kind,
        }
    }

    #[test]
    fn null_sink_never_builds_the_event() {
        let mut sink = NullSink;
        // If the closure ran, this test would panic.
        sink.record(|| unreachable!("NullSink must not evaluate events"));
        const { assert!(!NullSink::ENABLED) };
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut sink = VecSink::new();
        for c in 0..4 {
            sink.record(|| at(c, 0, TraceKind::FlitInjected { packet: c, seq: 0 }));
        }
        assert_eq!(sink.events().len(), 4);
        assert_eq!(
            sink.events()[2],
            at(2, 0, TraceKind::FlitInjected { packet: 2, seq: 0 })
        );
        let mut other = sink.clone();
        assert_eq!(sink, other);
        other.clear();
        assert!(other.events().is_empty());
    }

    #[test]
    fn ring_sink_keeps_only_the_tail() {
        let mut sink = RingSink::new(3);
        for c in 0..10 {
            sink.emit(at(c, 0, TraceKind::CreditSent { port: 0, class: 0 }));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 7);
        let cycles: Vec<u64> = sink.events().map(|e| e.cycle.raw()).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn ring_sink_rejects_zero_capacity() {
        RingSink::new(0);
    }

    #[test]
    fn ring_sink_preserves_emission_order_across_many_wraparounds() {
        // The retained window must always be the exact tail of the full
        // stream, oldest first, no matter how many times the ring wraps
        // or whether capacity divides the stream length evenly.
        for capacity in [1usize, 3, 4, 7] {
            for total in [0u64, 1, 3, 4, 5, 11, 29] {
                let mut ring = RingSink::new(capacity);
                let mut full = VecSink::new();
                for c in 0..total {
                    let event = at(
                        c,
                        (c % 5) as u16,
                        TraceKind::CreditSent { port: 0, class: 0 },
                    );
                    ring.emit(event);
                    full.emit(event);
                }
                let kept = total.min(capacity as u64) as usize;
                assert_eq!(ring.len(), kept, "cap={capacity} total={total}");
                assert_eq!(ring.dropped(), total - kept as u64);
                assert_eq!(ring.capacity(), capacity);
                let tail = &full.events()[full.events().len() - kept..];
                let ringed: Vec<TraceEvent> = ring.events().copied().collect();
                assert_eq!(ringed, tail, "cap={capacity} total={total}");
            }
        }
    }

    #[test]
    fn tee_sink_feeds_both_halves_in_order() {
        let mut tee = TeeSink::new(VecSink::new(), RingSink::new(2));
        for c in 0..5 {
            tee.record(|| at(c, 0, TraceKind::FlitEjected { packet: c, seq: 0 }));
        }
        assert_eq!(tee.a.events().len(), 5);
        assert_eq!(tee.b.len(), 2);
        let ring_tail: Vec<TraceEvent> = tee.b.events().copied().collect();
        assert_eq!(ring_tail, tee.a.events()[3..]);
    }

    #[test]
    fn tee_sink_with_a_null_half_still_enables_the_other() {
        const { assert!(<TeeSink<NullSink, RingSink> as TraceSink>::ENABLED) };
        const { assert!(!<TeeSink<NullSink, NullSink> as TraceSink>::ENABLED) };
        let mut tee = TeeSink::new(NullSink, RingSink::new(4));
        tee.record(|| at(1, 0, TraceKind::CreditSent { port: 1, class: 0 }));
        assert_eq!(tee.b.len(), 1);
    }

    #[test]
    fn shared_sink_feeds_one_underlying_sink() {
        let shared = SharedSink::new(VecSink::new());
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.emit(at(0, 1, TraceKind::FlitInjected { packet: 1, seq: 0 }));
        b.emit(at(0, 2, TraceKind::FlitInjected { packet: 2, seq: 0 }));
        assert_eq!(shared.with(|s| s.events().len()), 2);
        drop(a);
        drop(b);
        assert_eq!(shared.into_inner().into_events().len(), 2);
    }

    #[test]
    fn checker_accepts_a_clean_flit_lifetime() {
        let mut c = InvariantChecker::new();
        c.emit(at(
            0,
            0,
            TraceKind::PacketInjected {
                packet: 7,
                src: 0,
                dest: 1,
                length: 1,
            },
        ));
        c.emit(at(1, 0, TraceKind::FlitInjected { packet: 7, seq: 0 }));
        c.emit(at(1, 0, TraceKind::ChannelGrant { out_port: 1, at: 2 }));
        c.emit(at(
            2,
            0,
            TraceKind::DataSent {
                out_port: 1,
                packet: 7,
                seq: 0,
            },
        ));
        c.emit(at(
            3,
            1,
            TraceKind::BufferAlloc {
                port: 3,
                buffer: 0,
                packet: 7,
                seq: 0,
            },
        ));
        c.emit(at(
            4,
            1,
            TraceKind::BufferFree {
                port: 3,
                buffer: 0,
                packet: 7,
                seq: 0,
            },
        ));
        c.emit(at(4, 1, TraceKind::FlitEjected { packet: 7, seq: 0 }));
        c.emit(at(
            4,
            1,
            TraceKind::PacketDelivered {
                packet: 7,
                latency: 4,
            },
        ));
        c.assert_clean();
        c.assert_drained();
        assert_eq!(c.events_seen(), 8);
        assert_eq!(c.unused_grants(), 0);
    }

    #[test]
    fn checker_flags_double_buffer_alloc() {
        let mut c = InvariantChecker::new();
        c.emit(at(
            0,
            0,
            TraceKind::BufferAlloc {
                port: 1,
                buffer: 2,
                packet: 1,
                seq: 0,
            },
        ));
        c.emit(at(
            1,
            0,
            TraceKind::BufferAlloc {
                port: 1,
                buffer: 2,
                packet: 2,
                seq: 0,
            },
        ));
        assert_eq!(c.violation_count(), 1);
        assert!(c.violations()[0].contains("still held"));
    }

    #[test]
    fn checker_flags_mismatched_free() {
        let mut c = InvariantChecker::new();
        c.emit(at(
            0,
            0,
            TraceKind::BufferFree {
                port: 0,
                buffer: 0,
                packet: 9,
                seq: 0,
            },
        ));
        c.emit(at(
            0,
            0,
            TraceKind::BufferAlloc {
                port: 0,
                buffer: 1,
                packet: 1,
                seq: 0,
            },
        ));
        c.emit(at(
            1,
            0,
            TraceKind::BufferFree {
                port: 0,
                buffer: 1,
                packet: 1,
                seq: 5,
            },
        ));
        assert_eq!(c.violation_count(), 2);
        assert!(c.violations()[0].contains("freed while empty"));
        assert!(c.violations()[1].contains("holds 1.0"));
    }

    #[test]
    fn checker_flags_unreserved_channel_use() {
        let mut c = InvariantChecker::new();
        c.emit(at(
            5,
            3,
            TraceKind::DataSent {
                out_port: 2,
                packet: 4,
                seq: 1,
            },
        ));
        assert_eq!(c.violation_count(), 1);
        assert!(c.violations()[0].contains("without a channel reservation"));
    }

    #[test]
    fn checker_flags_double_grant_and_counts_unused() {
        let mut c = InvariantChecker::new();
        c.emit(at(0, 0, TraceKind::ChannelGrant { out_port: 1, at: 4 }));
        c.emit(at(0, 0, TraceKind::ChannelGrant { out_port: 1, at: 4 }));
        assert_eq!(c.violation_count(), 1);
        assert!(c.violations()[0].contains("granted twice"));
        assert_eq!(c.unused_grants(), 2);
    }

    #[test]
    fn checker_flags_duplicate_ejection_and_delivery() {
        let mut c = InvariantChecker::new();
        c.emit(at(0, 0, TraceKind::FlitEjected { packet: 3, seq: 0 }));
        c.emit(at(1, 0, TraceKind::FlitEjected { packet: 3, seq: 0 }));
        c.emit(at(
            1,
            0,
            TraceKind::PacketDelivered {
                packet: 3,
                latency: 1,
            },
        ));
        c.emit(at(
            2,
            0,
            TraceKind::PacketDelivered {
                packet: 3,
                latency: 2,
            },
        ));
        assert_eq!(c.violation_count(), 2);
    }

    #[test]
    fn checker_flags_fifo_violation() {
        let mut c = InvariantChecker::new();
        c.emit(at(
            0,
            0,
            TraceKind::QueueEnq {
                port: 1,
                vc: 0,
                packet: 1,
                seq: 0,
            },
        ));
        c.emit(at(
            0,
            0,
            TraceKind::QueueEnq {
                port: 1,
                vc: 0,
                packet: 1,
                seq: 1,
            },
        ));
        c.emit(at(
            1,
            0,
            TraceKind::QueueDeq {
                port: 1,
                vc: 0,
                packet: 1,
                seq: 1,
            },
        ));
        assert_eq!(c.violation_count(), 1);
        assert!(c.violations()[0].contains("FIFO order broken"));
    }

    #[test]
    fn checker_flags_backwards_time_per_node() {
        let mut c = InvariantChecker::new();
        c.emit(at(5, 0, TraceKind::CreditSent { port: 0, class: 0 }));
        c.emit(at(5, 1, TraceKind::CreditSent { port: 0, class: 0 }));
        c.emit(at(4, 1, TraceKind::CreditSent { port: 0, class: 0 }));
        assert_eq!(c.violation_count(), 1);
        assert!(c.violations()[0].contains("time ran backwards"));
    }

    #[test]
    fn checker_flags_short_delivery() {
        let mut c = InvariantChecker::new();
        c.emit(at(
            0,
            0,
            TraceKind::PacketInjected {
                packet: 1,
                src: 0,
                dest: 1,
                length: 5,
            },
        ));
        c.emit(at(9, 1, TraceKind::FlitEjected { packet: 1, seq: 0 }));
        c.emit(at(
            9,
            1,
            TraceKind::PacketDelivered {
                packet: 1,
                latency: 9,
            },
        ));
        assert_eq!(c.violation_count(), 1);
        assert!(c.violations()[0].contains("1 of 5 flits"));
    }

    #[test]
    #[should_panic(expected = "still occupied")]
    fn assert_drained_demands_empty_buffers() {
        let mut c = InvariantChecker::new();
        c.emit(at(
            0,
            0,
            TraceKind::BufferAlloc {
                port: 0,
                buffer: 0,
                packet: 1,
                seq: 0,
            },
        ));
        c.assert_drained();
    }

    #[test]
    fn violation_messages_are_capped_but_counted() {
        let mut c = InvariantChecker::new();
        for i in 0..(MAX_KEPT_VIOLATIONS as u64 + 10) {
            c.emit(at(
                i,
                0,
                TraceKind::DataSent {
                    out_port: 0,
                    packet: i,
                    seq: 0,
                },
            ));
        }
        assert_eq!(c.violations().len(), MAX_KEPT_VIOLATIONS);
        assert_eq!(c.violation_count(), MAX_KEPT_VIOLATIONS as u64 + 10);
    }
}
