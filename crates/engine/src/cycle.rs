//! Simulation time, measured in clock cycles.
//!
//! All components of the simulator share one synchronous clock. Time is
//! represented by [`Cycle`], a newtype over `u64` that only supports the
//! operations that are meaningful for a point in time (adding/subtracting a
//! duration, taking the difference of two points). This keeps cycle
//! arithmetic explicit and prevents accidentally mixing times with other
//! integer quantities such as buffer indices.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulation time, in clock cycles since the start of the run.
///
/// # Examples
///
/// ```
/// use noc_engine::Cycle;
///
/// let departure = Cycle::new(12);
/// let propagation = 4;
/// let arrival = departure + propagation;
/// assert_eq!(arrival, Cycle::new(16));
/// assert_eq!(arrival - departure, 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero, the first simulated cycle.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the next cycle (`self + 1`).
    #[inline]
    #[must_use]
    pub const fn next(self) -> Self {
        Cycle(self.0 + 1)
    }

    /// Saturating subtraction of a duration; clamps at time zero.
    #[inline]
    #[must_use]
    pub const fn saturating_sub(self, dur: u64) -> Self {
        Cycle(self.0.saturating_sub(dur))
    }

    /// Difference `self - earlier`, or `None` if `earlier` is later than
    /// `self`.
    #[inline]
    pub const fn checked_since(self, earlier: Cycle) -> Option<u64> {
        self.0.checked_sub(earlier.0)
    }

    /// Returns the larger of two cycles.
    #[inline]
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two cycles.
    #[inline]
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> Self {
        c.0
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, dur: u64) -> Cycle {
        Cycle(self.0 + dur)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, dur: u64) {
        self.0 += dur;
    }
}

impl Sub<u64> for Cycle {
    type Output = Cycle;

    /// # Panics
    ///
    /// Panics in debug builds if the subtraction would go before time zero.
    #[inline]
    fn sub(self, dur: u64) -> Cycle {
        Cycle(self.0 - dur)
    }
}

impl SubAssign<u64> for Cycle {
    #[inline]
    fn sub_assign(&mut self, dur: u64) {
        self.0 -= dur;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Duration between two points in time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
        assert_eq!(Cycle::ZERO.raw(), 0);
    }

    #[test]
    fn add_and_subtract_durations() {
        let t = Cycle::new(10);
        assert_eq!((t + 5).raw(), 15);
        assert_eq!((t - 5).raw(), 5);
        let mut u = t;
        u += 3;
        assert_eq!(u.raw(), 13);
        u -= 13;
        assert_eq!(u, Cycle::ZERO);
    }

    #[test]
    fn difference_of_points_is_duration() {
        assert_eq!(Cycle::new(16) - Cycle::new(12), 4);
    }

    #[test]
    fn checked_since_none_when_negative() {
        assert_eq!(Cycle::new(3).checked_since(Cycle::new(5)), None);
        assert_eq!(Cycle::new(5).checked_since(Cycle::new(3)), Some(2));
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(Cycle::new(3).saturating_sub(10), Cycle::ZERO);
        assert_eq!(Cycle::new(10).saturating_sub(3), Cycle::new(7));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Cycle::new(2);
        let b = Cycle::new(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn next_advances_by_one() {
        assert_eq!(Cycle::ZERO.next(), Cycle::new(1));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(7).to_string(), "cycle 7");
    }

    #[test]
    fn u64_round_trip() {
        let t: Cycle = 42u64.into();
        let raw: u64 = t.into();
        assert_eq!(raw, 42);
    }
}
