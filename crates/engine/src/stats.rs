//! Statistics collected during simulation.
//!
//! The paper reports *average packet latency* with 95% confidence
//! intervals, *accepted throughput* as a fraction of network capacity, and
//! time-based occupancy figures ("the buffer pool is full 40% of the
//! time"). This module provides the corresponding estimators:
//!
//! * [`RunningStats`] — streaming mean/variance (Welford) with a normal
//!   95% confidence interval, used for packet latency.
//! * [`Histogram`] — integer-valued distribution with quantiles, used for
//!   latency distributions and queue lengths.
//! * [`TimeWeighted`] — time-weighted average of a piecewise-constant
//!   signal, used for queue lengths and buffer occupancy.
//! * [`WindowedMean`] — mean over a sliding window of recent samples, used
//!   by warm-up detection.

/// Streaming mean and variance using Welford's algorithm.
///
/// # Examples
///
/// ```
/// use noc_engine::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.variance() - 4.571428571428571).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; `0.0` with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Half-width of the 95% confidence interval of the mean, using the
    /// normal approximation (z = 1.96), which is what large-sample network
    /// simulations conventionally report.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return f64::INFINITY;
        }
        1.96 * self.std_dev() / (self.count as f64).sqrt()
    }

    /// Relative half-width of the 95% CI (half-width / mean), used by the
    /// paper's "within 1% error" criterion.
    pub fn ci95_relative(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.ci95_half_width() / self.mean.abs()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Integer-valued histogram with exact counts per value up to a cap, plus
/// an overflow bucket.
///
/// # Examples
///
/// ```
/// use noc_engine::stats::Histogram;
///
/// let mut h = Histogram::new(100);
/// for v in [1, 2, 2, 3, 200] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.count_at(2), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.quantile(0.5), Some(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a histogram with exact buckets for values `0..=max_value`.
    pub fn new(max_value: usize) -> Self {
        Histogram {
            buckets: vec![0; max_value + 1],
            overflow: 0,
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Clears all samples while keeping the bucket capacity, so one
    /// allocation serves many recording epochs.
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.overflow = 0;
        self.count = 0;
        self.sum = 0;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples larger than the largest exact bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count of samples exactly equal to `value` (0 if beyond the cap).
    pub fn count_at(&self, value: u64) -> u64 {
        self.buckets.get(value as usize).copied().unwrap_or(0)
    }

    /// Mean of all samples (including overflowing ones), `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest value `v` such that at least `q` of the probability mass is
    /// at or below `v`. Returns `None` when empty or when the quantile
    /// falls in the overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (value, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return Some(value as u64);
            }
        }
        None
    }

    /// Iterates over `(value, count)` pairs for non-empty exact buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(v, &n)| (v as u64, n))
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. a queue
/// length that changes at known cycles.
///
/// # Examples
///
/// ```
/// use noc_engine::stats::TimeWeighted;
/// use noc_engine::Cycle;
///
/// let mut tw = TimeWeighted::new(Cycle::ZERO, 0.0);
/// tw.set(Cycle::new(10), 4.0);   // signal was 0.0 during cycles [0, 10)
/// tw.set(Cycle::new(20), 0.0);   // signal was 4.0 during cycles [10, 20)
/// assert!((tw.average(Cycle::new(20)) - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TimeWeighted {
    last_change: super::Cycle,
    current: f64,
    weighted_sum: f64,
    origin: super::Cycle,
}

impl TimeWeighted {
    /// Starts tracking a signal whose value is `initial` at time `start`.
    pub fn new(start: super::Cycle, initial: f64) -> Self {
        TimeWeighted {
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
            origin: start,
        }
    }

    /// Updates the signal to `value` effective at time `now`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` precedes the previous update.
    pub fn set(&mut self, now: super::Cycle, value: f64) {
        debug_assert!(now >= self.last_change, "time went backwards");
        let dt = now - self.last_change;
        self.weighted_sum += self.current * dt as f64;
        self.last_change = now;
        self.current = value;
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-weighted average of the signal over `[start, now)`.
    pub fn average(&self, now: super::Cycle) -> f64 {
        let dt_tail = now.checked_since(self.last_change).unwrap_or(0);
        let total = now.checked_since(self.origin).unwrap_or(0);
        if total == 0 {
            return self.current;
        }
        (self.weighted_sum + self.current * dt_tail as f64) / total as f64
    }

    /// Restarts accumulation at `now`, keeping the current value. Used at
    /// the warm-up/measurement boundary.
    pub fn reset(&mut self, now: super::Cycle) {
        self.set(now, self.current);
        self.weighted_sum = 0.0;
        self.origin = now;
    }
}

/// Mean over a sliding window of the most recent `capacity` samples.
///
/// # Examples
///
/// ```
/// use noc_engine::stats::WindowedMean;
///
/// let mut w = WindowedMean::new(2);
/// w.record(1.0);
/// w.record(3.0);
/// w.record(5.0); // evicts 1.0
/// assert_eq!(w.mean(), Some(4.0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WindowedMean {
    window: std::collections::VecDeque<f64>,
    capacity: usize,
    sum: f64,
}

impl WindowedMean {
    /// Creates a window holding up to `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        WindowedMean {
            window: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
        }
    }

    /// Adds a sample, evicting the oldest if the window is full.
    pub fn record(&mut self, x: f64) {
        if self.window.len() == self.capacity {
            if let Some(old) = self.window.pop_front() {
                self.sum -= old;
            }
        }
        self.window.push_back(x);
        self.sum += x;
    }

    /// Mean of the samples currently in the window; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.sum / self.window.len() as f64)
        }
    }

    /// `true` once the window holds `capacity` samples.
    pub fn is_full(&self) -> bool {
        self.window.len() == self.capacity
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// `true` if no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cycle;

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(s.ci95_half_width().is_infinite());
    }

    #[test]
    fn running_stats_single_sample() {
        let mut s = RunningStats::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn running_stats_matches_naive() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 13) as f64).collect();
        let mut s = RunningStats::new();
        for &x in &data {
            s.record(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for (i, &x) in data.iter().enumerate() {
            whole.record(x);
            if i < 20 {
                left.record(x)
            } else {
                right.record(x)
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.record(1.0);
        s.record(2.0);
        let before = s.clone();
        s.merge(&RunningStats::new());
        assert_eq!(s, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..10 {
            small.record((i % 5) as f64);
        }
        for i in 0..1000 {
            large.record((i % 5) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(10);
        for v in [0, 1, 1, 5, 10, 11] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.count_at(1), 2);
        assert_eq!(h.count_at(11), 0);
        assert_eq!(h.overflow(), 1);
        assert!((h.mean() - 28.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(100);
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn histogram_quantile_overflow_is_none() {
        let mut h = Histogram::new(1);
        h.record(1000);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_quantile_boundaries_with_all_mass_in_overflow() {
        // When every sample overflows, even the extreme quantiles have no
        // in-range answer: q=0 and q=1 must return None, not a bucket edge.
        let mut h = Histogram::new(4);
        for _ in 0..3 {
            h.record(99);
        }
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_quantile_boundaries_single_sample() {
        let mut h = Histogram::new(10);
        h.record(7);
        assert_eq!(h.quantile(0.0), Some(7));
        assert_eq!(h.quantile(1.0), Some(7));
    }

    #[test]
    fn histogram_iter_skips_empty() {
        let mut h = Histogram::new(5);
        h.record(2);
        h.record(2);
        h.record(4);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(2, 2), (4, 1)]);
    }

    #[test]
    fn time_weighted_piecewise() {
        let mut tw = TimeWeighted::new(Cycle::ZERO, 1.0);
        tw.set(Cycle::new(4), 3.0);
        // [0,4): 1.0, [4,8): 3.0 -> average over [0,8) = 2.0
        assert!((tw.average(Cycle::new(8)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.current(), 3.0);
    }

    #[test]
    fn time_weighted_reset_drops_history() {
        let mut tw = TimeWeighted::new(Cycle::ZERO, 100.0);
        tw.set(Cycle::new(10), 2.0);
        tw.reset(Cycle::new(10));
        assert!((tw.average(Cycle::new(20)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_average_across_reset_is_multi_segment() {
        // Warm-up segment: 0.0 over [0,10), then 4.0 over [10,20).
        let mut tw = TimeWeighted::new(Cycle::ZERO, 0.0);
        tw.set(Cycle::new(10), 4.0);
        assert!((tw.average(Cycle::new(20)) - 2.0).abs() < 1e-12);

        // Reset at the measurement boundary: history is dropped, but the
        // held value (4.0) carries over as the first measured segment.
        tw.reset(Cycle::new(20));
        assert_eq!(tw.current(), 4.0);
        tw.set(Cycle::new(25), 8.0);
        tw.set(Cycle::new(30), 0.0);
        // [20,25): 4.0, [25,30): 8.0 -> average over [20,30) = 6.0, with no
        // contamination from the pre-reset 0.0 segment.
        assert!((tw.average(Cycle::new(30)) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_zero_duration_returns_current() {
        let tw = TimeWeighted::new(Cycle::new(5), 7.0);
        assert_eq!(tw.average(Cycle::new(5)), 7.0);
    }

    #[test]
    fn windowed_mean_eviction() {
        let mut w = WindowedMean::new(3);
        assert_eq!(w.mean(), None);
        assert!(w.is_empty());
        w.record(1.0);
        w.record(2.0);
        w.record(3.0);
        assert!(w.is_full());
        assert_eq!(w.mean(), Some(2.0));
        w.record(10.0); // evicts 1.0
        assert_eq!(w.mean(), Some(5.0));
        assert_eq!(w.len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn windowed_mean_zero_capacity_panics() {
        WindowedMean::new(0);
    }
}
