//! A persistent worker pool for per-cycle parallel phases.
//!
//! [`sweep::run_parallel_mut`](crate::sweep::run_parallel_mut) spawns
//! fresh scoped threads on every call, which is fine for a handful of
//! sweep points but ruinous inside a simulation cycle: a network stepping
//! a million cycles would pay thread creation and teardown a million
//! times. [`WorkerPool`] keeps its workers alive across calls — threads
//! are spawned once, park on a condvar between rounds, and each
//! [`WorkerPool::run`] call costs two lock handoffs per worker instead of
//! an OS thread spawn.
//!
//! The calling thread participates as worker 0, so a pool of `n` threads
//! spawns only `n - 1` OS threads and a single-threaded pool runs the job
//! inline with no synchronisation at all. `run` is a barrier: it returns
//! only after every worker has finished the round, which is exactly the
//! determinism point the sharded stepping engine hands flits across shard
//! boundaries at.
//!
//! # Examples
//!
//! ```
//! use noc_engine::pool::WorkerPool;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = WorkerPool::new(4);
//! let hits = AtomicU64::new(0);
//! pool.run(&|worker| {
//!     hits.fetch_add(worker as u64 + 1, Ordering::Relaxed);
//! });
//! assert_eq!(hits.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Type-erased borrow of the round's job. The pointer is only
/// dereferenced between the round being published and the worker's
/// completion being counted, and [`WorkerPool::run`] does not return
/// until every completion is in, so the borrow never outlives the
/// closure it points at.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared references may cross threads) and
// the pool's barrier protocol bounds every dereference within the
// lifetime of the `run` call that published the pointer.
unsafe impl Send for JobPtr {}

/// Shared pool state, guarded by one mutex.
struct State {
    /// Monotonic round counter; a bump publishes a new job.
    round: u64,
    /// The job for the current round.
    job: Option<JobPtr>,
    /// Spawned workers that have not yet finished the current round.
    remaining: usize,
    /// Set by drop: workers exit instead of waiting for another round.
    shutdown: bool,
    /// First panic payload raised by a worker this round.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between rounds.
    work_cv: Condvar,
    /// The caller parks here until `remaining` reaches zero.
    done_cv: Condvar,
    /// Opt-in wall-clock accounting. Every timer is a thread-local
    /// `Instant` whose elapsed duration is `fetch_add`ed into these cells,
    /// so no cross-thread clock values are ever compared — the counters
    /// are barrier-safe by construction. Off by default; the hot path pays
    /// one relaxed load per round when off.
    prof: Profiling,
}

/// Accumulated pool timing, all in nanoseconds.
struct Profiling {
    enabled: AtomicBool,
    /// Per-worker time spent inside the round's job.
    busy_ns: Vec<AtomicU64>,
    /// Caller time parked on `done_cv` after finishing its own share.
    barrier_wait_ns: AtomicU64,
    /// Caller wall time per `run` call, publish to barrier release.
    round_wall_ns: AtomicU64,
    /// Number of profiled rounds.
    rounds: AtomicU64,
}

/// Snapshot of a pool's accumulated timing, taken via
/// [`WorkerPool::profile`]. All durations are nanoseconds summed since
/// profiling was enabled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolProfile {
    /// Rounds executed while profiling was on.
    pub rounds: u64,
    /// Caller wall-clock across those rounds (publish to barrier release).
    pub round_wall_ns: u64,
    /// Caller time spent waiting on the barrier after its own share.
    pub barrier_wait_ns: u64,
    /// Per-worker busy time inside the job, indexed by worker id.
    pub busy_ns: Vec<u64>,
}

impl PoolProfile {
    /// Fraction of worker-seconds spent idle: 1 minus total busy time over
    /// `threads x round wall`. 0 when nothing was profiled.
    pub fn idle_fraction(&self) -> f64 {
        let capacity = self.round_wall_ns as f64 * self.busy_ns.len() as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        let busy: u64 = self.busy_ns.iter().sum();
        (1.0 - busy as f64 / capacity).max(0.0)
    }
}

/// A pool of persistent worker threads driving identical per-round jobs.
///
/// Created once, reused every cycle. See the [module docs](self) for the
/// protocol and an example.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` logical workers (the caller counts as
    /// worker 0, so `threads - 1` OS threads are spawned).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                round: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            prof: Profiling {
                enabled: AtomicBool::new(false),
                busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
                barrier_wait_ns: AtomicU64::new(0),
                round_wall_ns: AtomicU64::new(0),
                rounds: AtomicU64::new(0),
            },
        });
        let handles = (1..threads)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("noc-pool-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// Number of logical workers (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Turns wall-clock profiling on or off. Enabling does not clear
    /// previously accumulated timing; use [`WorkerPool::reset_profile`]
    /// for a fresh measurement window.
    pub fn set_profiling(&self, on: bool) {
        self.shared.prof.enabled.store(on, Ordering::Relaxed);
    }

    /// Clears all accumulated profiling counters.
    pub fn reset_profile(&self) {
        let prof = &self.shared.prof;
        for cell in &prof.busy_ns {
            cell.store(0, Ordering::Relaxed);
        }
        prof.barrier_wait_ns.store(0, Ordering::Relaxed);
        prof.round_wall_ns.store(0, Ordering::Relaxed);
        prof.rounds.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the timing accumulated since profiling was enabled.
    /// Call between rounds (outside `run`) for consistent numbers.
    pub fn profile(&self) -> PoolProfile {
        let prof = &self.shared.prof;
        PoolProfile {
            rounds: prof.rounds.load(Ordering::Relaxed),
            round_wall_ns: prof.round_wall_ns.load(Ordering::Relaxed),
            barrier_wait_ns: prof.barrier_wait_ns.load(Ordering::Relaxed),
            busy_ns: prof
                .busy_ns
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Runs `job(worker)` once for every `worker` in `0..threads()`,
    /// worker 0 on the calling thread, and returns after **all** workers
    /// have finished — the call is a barrier.
    ///
    /// # Panics
    ///
    /// A panic in any worker (or in the caller's own share) is re-raised
    /// here with its original payload, after every other worker has
    /// finished the round.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        let prof = &self.shared.prof;
        let profiling = prof.enabled.load(Ordering::Relaxed);
        let round_start = profiling.then(Instant::now);
        if self.threads == 1 {
            job(0);
            if let Some(t0) = round_start {
                let ns = t0.elapsed().as_nanos() as u64;
                prof.busy_ns[0].fetch_add(ns, Ordering::Relaxed);
                prof.round_wall_ns.fetch_add(ns, Ordering::Relaxed);
                prof.rounds.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        {
            let mut state = self.shared.state.lock().unwrap();
            debug_assert_eq!(state.remaining, 0, "overlapping pool rounds");
            // SAFETY: erases the borrow's lifetime so the fat pointer can
            // sit in the shared state; the barrier below keeps every
            // dereference inside this call's lifetime.
            let erased: *const (dyn Fn(usize) + Sync) =
                unsafe { std::mem::transmute(job as *const (dyn Fn(usize) + Sync)) };
            state.job = Some(JobPtr(erased));
            state.remaining = self.threads - 1;
            state.round += 1;
            self.shared.work_cv.notify_all();
        }
        // The caller takes its own share while the workers run theirs. A
        // caller panic must still wait for the round to finish (workers
        // hold the job borrow), so it is caught and re-raised after the
        // barrier.
        let own_start = profiling.then(Instant::now);
        let own = catch_unwind(AssertUnwindSafe(|| job(0)));
        let wait_start = own_start.map(|t0| {
            prof.busy_ns[0].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            Instant::now()
        });
        let worker_panic = {
            let mut state = self.shared.state.lock().unwrap();
            while state.remaining > 0 {
                state = self.shared.done_cv.wait(state).unwrap();
            }
            state.job = None;
            state.panic.take()
        };
        if let Some(t0) = wait_start {
            prof.barrier_wait_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if let Some(t0) = round_start {
            prof.round_wall_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            prof.rounds.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
        if let Err(payload) = own {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked already recorded its payload; the
            // join error itself carries nothing new.
            let _ = handle.join();
        }
    }
}

/// Body of each spawned worker: wait for a round, run the job, count the
/// completion, repeat until shutdown.
fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen_round = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if state.round != seen_round {
                    seen_round = state.round;
                    break;
                }
                state = shared.work_cv.wait(state).unwrap();
            }
            state.job.expect("published round carries a job")
        };
        let busy_start = shared
            .prof
            .enabled
            .load(Ordering::Relaxed)
            .then(Instant::now);
        // SAFETY: the caller blocks in `run` until this worker counts
        // its completion below, so the closure behind the pointer is
        // alive for the whole call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(worker) }));
        if let Some(t0) = busy_start {
            shared.prof.busy_ns[worker]
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        let mut state = shared.state.lock().unwrap();
        if let Err(payload) = result {
            state.panic.get_or_insert(payload);
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_exactly_once_per_round() {
        let pool = WorkerPool::new(4);
        let per_worker: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        for _ in 0..100 {
            pool.run(&|w| {
                per_worker[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        for counter in &per_worker {
            assert_eq!(counter.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicU64::new(0);
        pool.run(&|w| {
            assert_eq!(w, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_is_a_barrier() {
        // Disjoint writes from all workers must be visible right after
        // `run` returns, round after round.
        let pool = WorkerPool::new(3);
        let slots: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        for round in 1..50usize {
            pool.run(&|w| slots[w].store(round, Ordering::Release));
            for slot in &slots {
                assert_eq!(slot.load(Ordering::Acquire), round);
            }
        }
    }

    #[test]
    #[should_panic(expected = "worker 2 exploded")]
    fn worker_panic_propagates_with_payload() {
        let pool = WorkerPool::new(4);
        pool.run(&|w| {
            if w == 2 {
                panic!("worker 2 exploded");
            }
        });
    }

    #[test]
    #[should_panic(expected = "caller share exploded")]
    fn caller_panic_propagates() {
        let pool = WorkerPool::new(2);
        pool.run(&|w| {
            if w == 0 {
                panic!("caller share exploded");
            }
        });
    }

    #[test]
    fn pool_survives_a_panicked_round() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 3 {
                    panic!("boom");
                }
            })
        }));
        assert!(result.is_err());
        // The pool still works after the failed round.
        let hits = AtomicU64::new(0);
        pool.run(&|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_panics() {
        WorkerPool::new(0);
    }

    #[test]
    fn profiling_off_accumulates_nothing() {
        let pool = WorkerPool::new(2);
        pool.run(&|_| {});
        assert_eq!(pool.profile(), PoolProfile::default_for(2));
    }

    #[test]
    fn profiling_counts_rounds_and_busy_time() {
        let pool = WorkerPool::new(3);
        pool.set_profiling(true);
        for _ in 0..5 {
            pool.run(&|_| {
                std::hint::black_box((0..2000).sum::<u64>());
            });
        }
        let prof = pool.profile();
        assert_eq!(prof.rounds, 5);
        assert_eq!(prof.busy_ns.len(), 3);
        assert!(prof.round_wall_ns > 0);
        // Every worker ran every round, so each accumulated some time.
        assert!(prof.busy_ns.iter().all(|&ns| ns > 0), "{prof:?}");
        let frac = prof.idle_fraction();
        assert!((0.0..=1.0).contains(&frac), "idle fraction {frac}");
        pool.reset_profile();
        assert_eq!(pool.profile(), PoolProfile::default_for(3));
    }

    #[test]
    fn profiling_single_thread_pool_attributes_all_to_worker_zero() {
        let pool = WorkerPool::new(1);
        pool.set_profiling(true);
        pool.run(&|_| {
            std::hint::black_box((0..2000).sum::<u64>());
        });
        let prof = pool.profile();
        assert_eq!(prof.rounds, 1);
        assert_eq!(prof.barrier_wait_ns, 0);
        assert!(prof.busy_ns[0] > 0);
        assert_eq!(prof.round_wall_ns, prof.busy_ns[0]);
    }

    impl PoolProfile {
        fn default_for(threads: usize) -> PoolProfile {
            PoolProfile {
                busy_ns: vec![0; threads],
                ..PoolProfile::default()
            }
        }
    }
}
