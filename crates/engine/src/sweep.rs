//! Parameter sweeps across threads.
//!
//! Reproducing a latency-throughput figure means running the same
//! simulation at many offered loads. Each point is independent, so
//! [`run_parallel`] fans the points out over `std::thread` scoped threads
//! and returns results in input order. No external dependency is needed:
//! scoped threads plus a shared atomic work index implement a simple
//! work-stealing pool.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `job` once per input across up to `threads` worker threads and
/// returns the outputs in the same order as `inputs`.
///
/// `job` receives `(index, &input)` so callers can derive per-point seeds
/// from the index. A panic in a worker stops the sweep and is re-raised
/// on the calling thread with its original payload; remaining inputs are
/// abandoned.
///
/// # Examples
///
/// ```
/// use noc_engine::sweep::run_parallel;
///
/// let loads = vec![0.1, 0.2, 0.3];
/// let squares = run_parallel(&loads, 2, |i, &x| (i, x * x));
/// assert_eq!(squares, vec![(0, 0.010000000000000002), (1, 0.04000000000000001), (2, 0.09)]);
/// ```
///
/// # Panics
///
/// Panics if `threads` is zero or if any job panics.
pub fn run_parallel<I, O, F>(inputs: &[I], threads: usize, job: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    assert!(threads > 0, "thread count must be positive");
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n);
    if workers == 1 {
        return inputs.iter().enumerate().map(|(i, x)| job(i, x)).collect();
    }

    let next = AtomicUsize::new(0);
    // A worker panic is caught, stashed here, and re-raised with its
    // original payload on the caller's thread (`std::thread::scope` alone
    // would replace it with a generic "a scoped thread panicked").
    let panicked = AtomicBool::new(false);
    let payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let slot_ptrs: Vec<_> = slots
        .iter_mut()
        .map(|s| SendPtr(s as *mut Option<O>))
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let job = &job;
            let slot_ptrs = &slot_ptrs;
            let panicked = &panicked;
            let payload = &payload;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n || panicked.load(Ordering::Relaxed) {
                    break;
                }
                match std::panic::catch_unwind(AssertUnwindSafe(|| job(i, &inputs[i]))) {
                    Ok(out) => {
                        // SAFETY: each index is claimed by exactly one
                        // worker via the atomic counter, so each slot is
                        // written once with no aliasing; the scope
                        // guarantees the writes complete before `slots`
                        // is read again.
                        unsafe { slot_ptrs[i].0.write(Some(out)) };
                    }
                    Err(cause) => {
                        panicked.store(true, Ordering::Relaxed);
                        payload.lock().unwrap().get_or_insert(cause);
                        break;
                    }
                }
            });
        }
    });

    if let Some(cause) = payload.into_inner().unwrap() {
        std::panic::resume_unwind(cause);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every sweep slot must be filled"))
        .collect()
}

/// Runs `job` once per item, mutating the items in place, sharded over up
/// to `threads` scoped worker threads.
///
/// Unlike [`run_parallel`] this hands each worker a contiguous chunk of
/// the slice instead of work-stealing indices: the items are mutated where
/// they live, nothing is collected, and the split needs no unsafe code.
/// `job` receives `(index, &mut item)` with `index` relative to the whole
/// slice. The call returns only after every worker finishes — it is a
/// barrier — so callers may touch the slice again immediately. Used by
/// `noc-network` to shard the router-step phase of a cycle.
///
/// A panic in any worker propagates to the caller once all workers have
/// stopped.
///
/// # Examples
///
/// ```
/// use noc_engine::sweep::run_parallel_mut;
///
/// let mut cells = vec![1u64, 2, 3, 4, 5];
/// run_parallel_mut(&mut cells, 2, |i, cell| *cell += i as u64);
/// assert_eq!(cells, vec![1, 3, 5, 7, 9]);
/// ```
///
/// # Panics
///
/// Panics if `threads` is zero or if any job panics.
pub fn run_parallel_mut<I, F>(items: &mut [I], threads: usize, job: F)
where
    I: Send,
    F: Fn(usize, &mut I) + Sync,
{
    assert!(threads > 0, "thread count must be positive");
    let n = items.len();
    if n == 0 {
        return;
    }
    let workers = threads.min(n);
    if workers == 1 {
        for (i, item) in items.iter_mut().enumerate() {
            job(i, item);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (c, items_chunk) in items.chunks_mut(chunk).enumerate() {
            let job = &job;
            scope.spawn(move || {
                for (i, item) in items_chunk.iter_mut().enumerate() {
                    job(c * chunk + i, item);
                }
            });
        }
    });
}

/// Raw pointer wrapper that asserts cross-thread sendability for the
/// disjoint-slot write pattern used by [`run_parallel`].
struct SendPtr<T>(*mut T);

// SAFETY: each pointer targets a distinct slot written by exactly one
// worker thread while the owning scope is alive.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Returns `count` evenly spaced values covering `[lo, hi]` inclusive.
///
/// # Examples
///
/// ```
/// let pts = noc_engine::sweep::linspace(0.1, 0.5, 5);
/// assert_eq!(pts, vec![0.1, 0.2, 0.30000000000000004, 0.4, 0.5]);
/// ```
///
/// # Panics
///
/// Panics if `count` is zero, or if `count == 1` while `lo != hi`.
pub fn linspace(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count > 0, "linspace needs at least one point");
    if count == 1 {
        assert!(lo == hi, "a single point requires lo == hi");
        return vec![lo];
    }
    let step = (hi - lo) / (count - 1) as f64;
    (0..count).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_results_in_order() {
        let inputs: Vec<u64> = (0..97).collect();
        let out = run_parallel(&inputs, 8, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, inputs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let inputs = vec![1, 2, 3];
        let out = run_parallel(&inputs, 1, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_inputs() {
        let out: Vec<i32> = run_parallel(&Vec::<i32>::new(), 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_inputs() {
        let inputs = vec![5];
        let out = run_parallel(&inputs, 64, |_, &x| x * x);
        assert_eq!(out, vec![25]);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_panics() {
        run_parallel(&[1], 0, |_, &x| x);
    }

    #[test]
    #[should_panic(expected = "job 3 exploded")]
    fn worker_panic_propagates_across_threads() {
        let inputs: Vec<usize> = (0..16).collect();
        run_parallel(&inputs, 4, |i, &x| {
            if i == 3 {
                panic!("job 3 exploded");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "job 0 exploded")]
    fn worker_panic_propagates_on_single_thread_path() {
        run_parallel(&[1], 1, |_, _: &i32| -> i32 { panic!("job 0 exploded") });
    }

    #[test]
    fn parallel_matches_serial_with_state() {
        // Each job derives output purely from the index, so parallel and
        // serial execution must agree exactly.
        let inputs: Vec<usize> = (0..50).collect();
        let serial: Vec<u64> = inputs
            .iter()
            .map(|&i| (i as u64).wrapping_mul(0x9E3779B9))
            .collect();
        let parallel = run_parallel(&inputs, 7, |_, &i| (i as u64).wrapping_mul(0x9E3779B9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_mut_touches_every_item_once() {
        let mut items: Vec<u64> = vec![0; 97];
        run_parallel_mut(&mut items, 8, |i, item| *item = i as u64 + 1);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(*item, i as u64 + 1);
        }
    }

    #[test]
    fn parallel_mut_single_thread_and_empty() {
        let mut items = vec![1, 2, 3];
        run_parallel_mut(&mut items, 1, |_, item| *item *= 2);
        assert_eq!(items, vec![2, 4, 6]);
        let mut none: Vec<i32> = Vec::new();
        run_parallel_mut(&mut none, 4, |_, _| unreachable!());
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn parallel_mut_zero_threads_panics() {
        run_parallel_mut(&mut [1], 0, |_, _: &mut i32| {});
    }

    #[test]
    #[should_panic]
    fn parallel_mut_worker_panic_propagates() {
        let mut items: Vec<usize> = (0..16).collect();
        run_parallel_mut(&mut items, 4, |i, _| {
            if i == 9 {
                panic!("job 9 exploded");
            }
        });
    }

    #[test]
    fn linspace_endpoints() {
        let pts = linspace(1.0, 2.0, 3);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], 1.0);
        assert_eq!(pts[2], 2.0);
    }

    #[test]
    fn linspace_single_point() {
        assert_eq!(linspace(0.5, 0.5, 1), vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn linspace_zero_points_panics() {
        linspace(0.0, 1.0, 0);
    }
}
